open Relalg
open Authz
module M = Scenario.Medical

let c = Alcotest.test_case
let check = Alcotest.check
let aset names = Attribute.Set.of_list (List.map M.attr names)

let profile ?(join = Joinpath.empty) ?(sigma = []) pi =
  Profile.make ~pi:(aset pi) ~join ~sigma:(aset sigma)

let holder_patient = Joinpath.Cond.eq (M.attr "Holder") (M.attr "Patient")
let illness_disease = Joinpath.Cond.eq (M.attr "Illness") (M.attr "Disease")

let test_view_per_server () =
  check Alcotest.int "S_I has 3 rules" 3
    (List.length (Policy.view M.policy M.s_i));
  check Alcotest.int "S_H has 4 rules" 4
    (List.length (Policy.view M.policy M.s_h));
  check Alcotest.int "S_N has 7 rules" 7
    (List.length (Policy.view M.policy M.s_n));
  check Alcotest.int "S_D has 1 rule" 1
    (List.length (Policy.view M.policy M.s_d))

let test_can_view_exact () =
  (* Authorization 1 admits exactly its own attributes. *)
  check Alcotest.bool "own relation" true
    (Policy.can_view M.policy (profile [ "Holder"; "Plan" ]) M.s_i)

let test_can_view_subset_of_attrs () =
  (* Condition 1 of Def 3.3 is ⊆: fewer attributes are fine. *)
  check Alcotest.bool "subset ok" true
    (Policy.can_view M.policy (profile [ "Holder" ]) M.s_i);
  (* ... but a superset is not. *)
  check Alcotest.bool "superset denied" false
    (Policy.can_view M.policy (profile [ "Holder"; "Plan"; "Patient" ]) M.s_i)

let test_sigma_counts_as_visible () =
  (* Selection attributes reveal information: pi ∪ sigma ⊆ A. *)
  check Alcotest.bool "sigma within grant" true
    (Policy.can_view M.policy
       (profile [ "Holder" ] ~sigma:[ "Plan" ])
       M.s_i);
  check Alcotest.bool "sigma outside grant" false
    (Policy.can_view M.policy
       (profile [ "Holder" ] ~sigma:[ "Patient" ])
       M.s_i)

let test_path_equality_strict () =
  (* Section 3.2's example: S_D may see Disease_list, but not
     Disease_list ⋈ Hospital — the extra join leaks which illnesses
     occur in the hospital. *)
  let plain = profile [ "Illness"; "Treatment" ] in
  let joined =
    profile [ "Illness"; "Treatment" ]
      ~join:(Joinpath.singleton illness_disease)
  in
  check Alcotest.bool "plain view ok" true
    (Policy.can_view M.policy plain M.s_d);
  check Alcotest.bool "joined view denied" false
    (Policy.can_view M.policy joined M.s_d)

let test_path_equality_orientation_insensitive () =
  (* Authorization 2 is spelled ⟨Holder, Patient⟩; a profile built with
     the flipped condition must still match. *)
  let p =
    profile [ "Holder"; "Physician" ]
      ~join:
        (Joinpath.singleton
           (Joinpath.Cond.eq (M.attr "Patient") (M.attr "Holder")))
  in
  check Alcotest.bool "flipped spelling admitted" true
    (Policy.can_view M.policy p M.s_i)

let test_smaller_path_not_implied () =
  (* Having authorization 2 (path {⟨Holder,Patient⟩}) does not admit a
     profile with an empty path over the same attributes. *)
  let p = profile [ "Physician" ] in
  check Alcotest.bool "empty path denied" false
    (Policy.can_view M.policy p M.s_i)

let test_closed_policy () =
  (* A server with no authorization sees nothing. *)
  let stranger = Server.make "S_X" in
  check Alcotest.bool "no grant, no view" false
    (Policy.can_view M.policy (profile [ "Holder" ]) stranger)

let test_authorizing_rule () =
  (match Policy.authorizing_rule M.policy (profile [ "Holder" ]) M.s_i with
   | Some rule ->
     check Alcotest.bool "rule covers Holder" true
       (Attribute.Set.mem (M.attr "Holder") rule.Authorization.attrs)
   | None -> Alcotest.fail "no rule found");
  check Alcotest.bool "none for denied view" true
    (Policy.authorizing_rule M.policy
       (profile [ "Holder"; "Plan"; "Patient" ])
       M.s_i
    = None)

let test_add_union () =
  let extra =
    Authorization.make_exn ~attrs:(aset [ "Treatment" ]) ~path:Joinpath.empty
      M.s_i
  in
  let p2 = Policy.add extra M.policy in
  check Alcotest.int "one more" 16 (Policy.cardinality p2);
  check Alcotest.int "add idempotent" 16
    (Policy.cardinality (Policy.add extra p2));
  check Alcotest.int "union" 16
    (Policy.cardinality (Policy.union M.policy p2));
  check Alcotest.bool "new view granted" true
    (Policy.can_view p2 (profile [ "Treatment" ]) M.s_i);
  check Alcotest.bool "original unchanged" false
    (Policy.can_view M.policy (profile [ "Treatment" ]) M.s_i)

let test_servers () =
  check Alcotest.int "four servers" 4
    (Server.Set.cardinal (Policy.servers M.policy))

(* Property: can_view is monotone in the attribute set — removing
   attributes from an admitted profile keeps it admitted. *)
let prop_monotone_attrs =
  let all = [ "Patient"; "Disease"; "Physician"; "Holder"; "Plan" ] in
  QCheck.Test.make ~name:"can_view antimonotone in pi" ~count:300
    QCheck.(pair (list_of_size Gen.(1 -- 5) (int_bound 4)) (int_bound 4))
    (fun (keep_idx, drop) ->
      let pi = List.map (fun i -> List.nth all i) keep_idx in
      let join = Joinpath.singleton holder_patient in
      let full = profile pi ~join in
      let smaller =
        Profile.make
          ~pi:(Attribute.Set.remove (M.attr (List.nth all drop)) (aset pi))
          ~join ~sigma:Attribute.Set.empty
      in
      QCheck.assume (not (Attribute.Set.is_empty smaller.Profile.pi));
      (not (Policy.can_view M.policy full M.s_h))
      || Policy.can_view M.policy smaller M.s_h)

let suite =
  [
    c "view partitions by server" `Quick test_view_per_server;
    c "can_view exact grant" `Quick test_can_view_exact;
    c "attribute subset admitted, superset denied" `Quick
      test_can_view_subset_of_attrs;
    c "sigma attributes are visible information" `Quick
      test_sigma_counts_as_visible;
    c "join-path equality is strict (S_D example)" `Quick
      test_path_equality_strict;
    c "path equality mod orientation" `Quick
      test_path_equality_orientation_insensitive;
    c "smaller path not implied" `Quick test_smaller_path_not_implied;
    c "closed policy" `Quick test_closed_policy;
    c "authorizing_rule cites the grant" `Quick test_authorizing_rule;
    c "add / union" `Quick test_add_union;
    c "servers" `Quick test_servers;
    Helpers.qcheck prop_monotone_attrs;
  ]
