test/test_timing.ml: Alcotest Distsim Engine Fmt List Plan Planner Printf Relalg Scenario Timing
