test/test_advisor.ml: Advisor Alcotest Authz Catalog Joinpath List Planner Relalg Safe_planner Safety Scenario Server Text
