test/test_policy.ml: Alcotest Attribute Authorization Authz Gen Helpers Joinpath List Policy Profile QCheck Relalg Scenario Server
