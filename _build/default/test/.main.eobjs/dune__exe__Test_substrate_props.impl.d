test/test_substrate_props.ml: Attribute Gen Helpers Joinpath List Predicate QCheck Relalg Relation Schema Tuple Value
