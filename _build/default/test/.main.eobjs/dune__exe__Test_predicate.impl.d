test/test_predicate.ml: Alcotest Attribute Fmt Helpers List Predicate Relalg Value
