test/test_revocation.ml: Alcotest Assignment Attribute Authz Fmt Helpers Joinpath List Planner Relalg Revocation Safe_planner Scenario Server
