test/test_dot.ml: Alcotest Assignment Dot Helpers List Planner Relalg Safe_planner Scenario String
