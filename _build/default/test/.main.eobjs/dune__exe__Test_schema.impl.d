test/test_schema.ml: Alcotest Attribute Helpers List Relalg Schema
