test/test_plan.ml: Alcotest Algebra Attribute Helpers Joinpath List Plan Relalg Scenario Schema
