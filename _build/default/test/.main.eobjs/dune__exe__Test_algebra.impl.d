test/test_algebra.ml: Alcotest Algebra Attribute Helpers Joinpath List Predicate Relalg Relation Schema Value
