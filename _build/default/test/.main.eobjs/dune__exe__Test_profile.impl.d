test/test_profile.ml: Alcotest Algebra Attribute Authz Gen Helpers Joinpath List Plan Predicate Profile QCheck Relalg Scenario Schema Value
