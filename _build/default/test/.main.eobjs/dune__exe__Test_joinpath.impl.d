test/test_joinpath.ml: Alcotest Attribute Gen Helpers Joinpath List QCheck Relalg
