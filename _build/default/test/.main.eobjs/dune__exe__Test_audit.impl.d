test/test_audit.ml: Alcotest Attribute Audit Authz Distsim Engine Helpers Joinpath List Network Option Planner Relalg Relation Scenario
