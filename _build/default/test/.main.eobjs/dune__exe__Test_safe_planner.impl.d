test/test_safe_planner.ml: Alcotest Assignment Attribute Authz Fmt Helpers List Planner Relalg Safe_planner Safety Scenario Schema Server
