test/test_parser_fuzz.ml: Alcotest Attribute Data_gen Distsim Gen Helpers Lazy List Plan QCheck Query Query_gen Relalg Rng Scenario Sql_parser String System_gen Workload
