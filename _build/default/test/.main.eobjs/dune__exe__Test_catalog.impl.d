test/test_catalog.ml: Alcotest Attribute Catalog Helpers List Relalg Schema Server
