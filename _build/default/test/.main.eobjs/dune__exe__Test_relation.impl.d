test/test_relation.ml: Alcotest Attribute Gen Helpers Joinpath List Predicate QCheck Relalg Relation Schema Tuple Value
