test/test_stats.ml: Alcotest Attribute Cost Joinpath Optimizer Planner Relalg Scenario Stats
