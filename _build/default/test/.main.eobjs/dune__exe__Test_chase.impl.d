test/test_chase.ml: Alcotest Attribute Authorization Authz Chase Joinpath List Policy Profile Relalg Scenario Schema Server
