test/helpers.ml: Alcotest Attribute Authz Joinpath List Option Planner QCheck_alcotest Relalg Relation Schema Server String Tuple Value
