test/test_open_policy.ml: Alcotest Attribute Authorization Authz Distsim Helpers Joinpath List Planner Policy Profile Relalg Scenario
