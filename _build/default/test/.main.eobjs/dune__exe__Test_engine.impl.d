test/test_engine.ml: Alcotest Algebra Attribute Catalog Distsim Engine Helpers Joinpath List Network Plan Planner Relalg Relation Scenario Schema Server Value
