test/test_exhaustive.ml: Alcotest Assignment Cost Exhaustive Fmt List Planner Safe_planner Safety Scenario
