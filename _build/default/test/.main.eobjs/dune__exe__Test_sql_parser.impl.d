test/test_sql_parser.ml: Alcotest Attribute Catalog Helpers Joinpath List Predicate Query Relalg Scenario Schema Server Sql_parser
