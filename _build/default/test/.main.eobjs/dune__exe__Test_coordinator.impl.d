test/test_coordinator.ml: Alcotest Assignment Attribute Authz Distsim Exhaustive Fmt Helpers Joinpath List Planner Relalg Relation Safe_planner Safety Scenario Server Third_party
