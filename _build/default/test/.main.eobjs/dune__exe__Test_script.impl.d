test/test_script.ml: Alcotest Assignment Fmt Hashtbl Helpers List Planner Printf Relalg Safe_planner Safety Scenario Script Server Third_party
