test/test_des.ml: Alcotest Des Distsim Engine Fmt List Planner Printf Scenario Timing
