test/test_cost.ml: Alcotest Algebra Assignment Attribute Cost Fmt Helpers Option Plan Planner Predicate Relalg Safe_planner Safety Scenario Schema Value
