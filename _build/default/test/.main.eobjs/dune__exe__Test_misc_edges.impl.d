test/test_misc_edges.ml: Alcotest Attribute Authz Catalog Distsim Helpers Joinpath List Option Planner Query Relalg Relation Scenario Schema Server Sql_parser Text Tuple Value Workload
