test/test_network.ml: Alcotest Authz Distsim Helpers List Network Option Relalg Relation Scenario
