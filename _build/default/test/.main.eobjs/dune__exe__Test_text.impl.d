test/test_text.ml: Alcotest Attribute Authz Catalog Distsim Helpers Joinpath List Option Planner Query Relalg Relation Scenario Schema Sql_parser Text Tuple Value
