test/test_authorization.ml: Alcotest Attribute Authorization Authz Helpers Joinpath List Relalg Scenario Server
