test/test_local_join.ml: Alcotest Assignment Authz Catalog Distsim Helpers Joinpath List Planner Printf Query Relalg Relation Safe_planner Safety Scenario Schema Server Sql_parser Value
