test/test_third_party.ml: Alcotest Distsim Helpers List Planner Safety Scenario Third_party
