test/test_attribute.ml: Alcotest Attribute Fmt Relalg
