test/test_query.ml: Alcotest Algebra Catalog Helpers Joinpath List Option Predicate Query Relalg Scenario Schema String Value
