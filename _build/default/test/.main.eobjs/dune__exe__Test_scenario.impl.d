test/test_scenario.ml: Alcotest Catalog Distsim Helpers List Planner Relalg Relation Scenario Schema Server String
