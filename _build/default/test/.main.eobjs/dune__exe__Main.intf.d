test/main.mli:
