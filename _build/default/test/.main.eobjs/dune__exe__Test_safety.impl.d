test/test_safety.ml: Alcotest Algebra Assignment Attribute Authz Catalog Helpers Joinpath List Plan Planner Relalg Safe_planner Safety Scenario Schema Server
