test/test_federation.ml: Alcotest Authz Catalog Distsim Federation Helpers Joinpath List Option Planner Relalg Relation Scenario Schema Text
