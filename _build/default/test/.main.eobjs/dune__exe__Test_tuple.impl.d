test/test_tuple.ml: Alcotest Attribute Helpers List Relalg Tuple Value
