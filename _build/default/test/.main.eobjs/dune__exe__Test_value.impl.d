test/test_value.ml: Alcotest Helpers List QCheck Relalg Value
