test/test_properties.ml: Alcotest Attribute Authz Authz_gen Catalog Data_gen Distsim Fmt Helpers Joinpath Lazy List Option Plan Planner Query_gen Relalg Rng Schema System_gen Workload
