test/test_workload.ml: Alcotest Authz Authz_gen Catalog Data_gen Helpers List Option Plan Planner Printf Query Query_gen Relalg Relation Rng Schema Server System_gen Workload
