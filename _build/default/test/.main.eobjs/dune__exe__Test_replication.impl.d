test/test_replication.ml: Alcotest Assignment Authz Catalog Distsim Exhaustive Helpers Joinpath List Planner Query Relalg Safe_planner Safety Scenario Schema Server Sql_parser Text
