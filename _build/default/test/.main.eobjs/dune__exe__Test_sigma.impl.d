test/test_sigma.ml: Advisor Alcotest Attribute Authz Distsim Exhaustive Helpers Joinpath List Planner Query Relalg Relation Safe_planner Safety Scenario Sql_parser
