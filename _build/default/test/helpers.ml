(* Shared test utilities: Alcotest testables for the library's types and
   shorthands used across the suites. *)

open Relalg

let value = Alcotest.testable Value.pp Value.equal

let attribute = Alcotest.testable Attribute.pp_qualified Attribute.equal

let attribute_set =
  Alcotest.testable Attribute.Set.pp Attribute.Set.equal

let server = Alcotest.testable Server.pp Server.equal
let schema = Alcotest.testable Schema.pp Schema.equal
let joinpath = Alcotest.testable Joinpath.pp Joinpath.equal

let join_cond =
  Alcotest.testable Joinpath.Cond.pp Joinpath.Cond.equal

let tuple = Alcotest.testable Tuple.pp Tuple.equal
let relation = Alcotest.testable Relation.pp Relation.equal
let profile = Alcotest.testable Authz.Profile.pp Authz.Profile.equal

let authorization =
  Alcotest.testable Authz.Authorization.pp Authz.Authorization.equal

let assignment =
  Alcotest.testable Planner.Assignment.pp Planner.Assignment.equal

let executor =
  Alcotest.testable Planner.Assignment.pp_executor (fun a b ->
      Server.equal a.Planner.Assignment.master b.Planner.Assignment.master
      && Option.equal Server.equal a.Planner.Assignment.slave
           b.Planner.Assignment.slave)

(* Shorthands. *)

let attrs = Attribute.Set.of_list
let names set = List.map Attribute.name (Attribute.Set.elements set)

(* Quick relation literal: [rel ~key:["K"] "R" ["K";"A"] rows] with
   string values. *)
let rel ?(key = []) name attr_names rows =
  let schema = Schema.make name ~key attr_names in
  Relation.of_rows schema
    (List.map (List.map (fun s -> Value.String s)) rows)

let check_ok pp = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %a" pp e

let qcheck = QCheck_alcotest.to_alcotest

(* [contains ~sub s] — naive substring search, for output assertions. *)
let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  n = 0 || at 0
