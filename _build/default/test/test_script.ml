open Relalg
open Planner
module M = Scenario.Medical
module R = Scenario.Research
module SC = Scenario.Supply_chain

let c = Alcotest.test_case
let check = Alcotest.check
let contains = Helpers.contains

let compile catalog policy plan =
  match Safe_planner.plan catalog policy plan with
  | Error f -> Alcotest.failf "%a" Safe_planner.pp_failure f
  | Ok { assignment; _ } ->
    (match Script.of_assignment catalog plan assignment with
     | Ok s -> s
     | Error e -> Alcotest.failf "%a" Safety.pp_error e)

(* (server, defines, sql) of each Local step. *)
let locals_of s =
  List.filter_map
    (function
      | Script.Local { at; defines; sql } -> Some (at, defines, sql)
      | Script.Ship _ -> None)
    s.Script.steps

(* (src, dst, temp) of each Ship step. *)
let ships_of s =
  List.filter_map
    (function
      | Script.Ship { src; dst; temp } -> Some (src, dst, temp)
      | Script.Local _ -> None)
    s.Script.steps

let test_medical_script () =
  let s = compile M.catalog M.policy (M.example_plan ()) in
  check Helpers.server "result at S_H" M.s_h s.Script.location;
  check Alcotest.string "result temp" "t0" s.Script.result;
  (* Three transfers, matching the three safety flows. *)
  check Alcotest.int "three ships" 3 (List.length (ships_of s));
  (* The semi-join shows up as DISTINCT keys + NATURAL JOIN. *)
  let sqls = List.map (fun (_, _, sql) -> sql) (locals_of s) in
  check Alcotest.bool "keys projection" true
    (List.exists (contains ~sub:"SELECT DISTINCT Patient") sqls);
  check Alcotest.bool "final natural join" true
    (List.exists (contains ~sub:"NATURAL JOIN") sqls);
  (* Base relations are read exactly once each. *)
  List.iter
    (fun rel ->
      check Alcotest.int rel 1
        (List.length (List.filter (contains ~sub:("FROM " ^ rel)) sqls)))
    [ "Insurance"; "Hospital"; "Nat_registry" ]

let test_every_temp_defined_before_use () =
  (* Dataflow sanity: a Ship only moves temps already defined, and a
     Local's FROM only references base relations or temps defined (and
     present at that server). *)
  let scripts =
    [
      compile M.catalog M.policy (M.example_plan ());
      compile SC.catalog SC.policy (SC.tracking_plan ());
      compile SC.catalog SC.policy (SC.customers_plan ());
    ]
  in
  List.iter
    (fun s ->
      let defined = Hashtbl.create 16 in
      List.iter
        (function
          | Script.Local { defines; at; _ } ->
            Hashtbl.replace defined (defines, Server.name at) ()
          | Script.Ship { src; dst; temp } ->
            check Alcotest.bool
              (Printf.sprintf "%s defined at %s before shipping" temp
                 (Server.name src))
              true
              (Hashtbl.mem defined (temp, Server.name src));
            Hashtbl.replace defined (temp, Server.name dst) ())
        s.Script.steps;
      check Alcotest.bool "result defined at its location" true
        (Hashtbl.mem defined (s.Script.result, Server.name s.Script.location)))
    scripts

let test_coordinator_script () =
  let plan = R.outcomes_plan () in
  let assignment =
    match Third_party.plan ~helpers:[ R.s_t ] R.catalog R.policy plan with
    | Ok r -> r.Third_party.assignment
    | Error _ -> Alcotest.fail "not rescued"
  in
  match Script.of_assignment R.catalog plan assignment with
  | Error e -> Alcotest.failf "%a" Safety.pp_error e
  | Ok s ->
    (* Four transfers: keys x2, matched, reduced. *)
    check Alcotest.int "four ships" 4 (List.length (ships_of s));
    (* The matcher runs exactly one statement (the key match). *)
    let at_matcher =
      List.filter (fun (at, _, _) -> Server.equal at R.s_t) (locals_of s)
    in
    check Alcotest.int "one statement at the matcher" 1
      (List.length at_matcher)

let test_proxy_script () =
  let plan = SC.pricing_plan () in
  let assignment =
    match Third_party.plan ~helpers:[ SC.s_b ] SC.catalog SC.policy plan with
    | Ok r -> r.Third_party.assignment
    | Error _ -> Alcotest.fail "not rescued"
  in
  match Script.of_assignment ~third_party:true SC.catalog plan assignment with
  | Error e -> Alcotest.failf "%a" Safety.pp_error e
  | Ok s ->
    check Helpers.server "result at the broker" SC.s_b s.Script.location;
    check Alcotest.int "both operands travel" 2 (List.length (ships_of s))

let test_invalid_assignment_rejected () =
  match
    Script.of_assignment M.catalog (M.example_plan ()) Assignment.empty
  with
  | Error (Safety.Unassigned_node _) -> ()
  | _ -> Alcotest.fail "empty assignment compiled"

let test_rendering () =
  let s = compile M.catalog M.policy (M.example_plan ()) in
  let text = Fmt.str "%a" Script.pp s in
  List.iter
    (fun sub -> check Alcotest.bool sub true (contains ~sub text))
    [ "S_I: CREATE TEMP TABLE t4"; "SEND"; "-- result in t0 at S_H" ]

let suite =
  [
    c "medical script" `Quick test_medical_script;
    c "temps defined before use" `Quick test_every_temp_defined_before_use;
    c "coordinator script" `Quick test_coordinator_script;
    c "proxy script" `Quick test_proxy_script;
    c "invalid assignments rejected" `Quick test_invalid_assignment_rejected;
    c "rendering" `Quick test_rendering;
  ]
