open Relalg
open Workload

let c = Alcotest.test_case
let check = Alcotest.check

let chain ?(seed = 42) ?(relations = 5) ?(servers = 5) () =
  System_gen.generate (Rng.make ~seed) ~relations ~servers ~extra:2
    ~topology:System_gen.Chain

let test_chain_shape () =
  let sys = chain () in
  check Alcotest.int "5 relations" 5 (List.length (Catalog.schemas sys.catalog));
  check Alcotest.int "4 edges" 4 (List.length sys.edges);
  (* Chain edges connect consecutive relations. *)
  List.iteri
    (fun i (a, b, _) ->
      check Alcotest.string "lower" (Printf.sprintf "R%d" i) a;
      check Alcotest.string "higher" (Printf.sprintf "R%d" (i + 1)) b)
    sys.edges

let test_star_shape () =
  let sys =
    System_gen.generate (Rng.make ~seed:1) ~relations:5 ~servers:3 ~extra:0
      ~topology:System_gen.Star
  in
  List.iter
    (fun (a, _, _) -> check Alcotest.string "center" "R0" a)
    sys.edges;
  (* Round-robin placement over 3 servers. *)
  check Alcotest.int "3 servers" 3
    (Server.Set.cardinal (Catalog.servers sys.catalog))

let test_random_topology_connected () =
  let sys =
    System_gen.generate (Rng.make ~seed:7) ~relations:8 ~servers:8 ~extra:1
      ~topology:(System_gen.Random { extra_edges = 3 })
  in
  check Alcotest.bool "at least a spanning tree" true
    (List.length sys.edges >= 7);
  check Alcotest.bool "at most tree + extras" true
    (List.length sys.edges <= 10)

let test_determinism () =
  let a = chain ~seed:11 () and b = chain ~seed:11 () in
  check Alcotest.(list string) "same relations"
    (List.map Schema.name (Catalog.schemas a.catalog))
    (List.map Schema.name (Catalog.schemas b.catalog));
  let qa = Query_gen.generate (Rng.make ~seed:3) ~joins:2 a in
  let qb = Query_gen.generate (Rng.make ~seed:3) ~joins:2 b in
  match qa, qb with
  | Some qa, Some qb ->
    check Alcotest.(list string) "same query" (Query.relations qa)
      (Query.relations qb)
  | _ -> Alcotest.fail "query generation failed"

let test_validation () =
  (match
     System_gen.generate (Rng.make ~seed:1) ~relations:0 ~servers:1 ~extra:0
       ~topology:System_gen.Chain
   with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "0 relations accepted");
  match
    System_gen.generate (Rng.make ~seed:1) ~relations:1 ~servers:0 ~extra:0
      ~topology:System_gen.Chain
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "0 servers accepted"

let test_query_gen_valid () =
  let sys = chain ~relations:6 () in
  let rng = Rng.make ~seed:5 in
  for _ = 1 to 20 do
    match Query_gen.generate rng ~joins:3 sys with
    | None -> Alcotest.fail "walk failed on a chain"
    | Some q ->
      check Alcotest.int "four relations" 4 (List.length (Query.relations q));
      (* Queries compile to valid plans. *)
      let plan = Query.to_plan q in
      check Alcotest.bool "positive size" true (Plan.size plan > 0)
  done

let test_query_gen_too_many_joins () =
  let sys = chain ~relations:3 () in
  check Alcotest.bool "walk exhausted" true
    (Query_gen.generate (Rng.make ~seed:1) ~joins:5 sys = None)

let test_base_grants () =
  let sys = chain () in
  let policy = Authz_gen.base_grants sys in
  check Alcotest.int "one per relation" 5 (Authz.Policy.cardinality policy);
  List.iter
    (fun schema ->
      let server =
        Helpers.check_ok Catalog.pp_error
          (Catalog.server_of sys.catalog (Schema.name schema))
      in
      check Alcotest.bool "own relation visible" true
        (Authz.Policy.can_view policy
           (Authz.Profile.of_base schema)
           server))
    (Catalog.schemas sys.catalog)

let test_density_extremes () =
  let sys = chain () in
  let p0 = Authz_gen.generate (Rng.make ~seed:2) ~density:0.0 sys in
  check Alcotest.int "density 0 = base grants only" 5
    (Authz.Policy.cardinality p0);
  let p1 =
    Authz_gen.generate (Rng.make ~seed:2) ~attr_keep:1.0 ~density:1.0 sys
  in
  check Alcotest.bool "density 1 adds rules" true
    (Authz.Policy.cardinality p1 > 5)

let test_full_density_makes_feasible () =
  let sys = chain ~relations:4 () in
  let policy =
    Authz_gen.generate (Rng.make ~seed:9) ~attr_keep:1.0 ~density:1.0 sys
  in
  match Query_gen.generate_plan (Rng.make ~seed:9) ~joins:3 sys with
  | None -> Alcotest.fail "no query"
  | Some plan ->
    check Alcotest.bool "feasible under full grants" true
      (Planner.Safe_planner.feasible sys.catalog policy plan)

let test_connected_subtrees () =
  let sys = chain ~relations:4 () in
  let subtrees = Authz_gen.connected_subtrees sys ~max_edges:2 in
  (* 4 singletons + 3 single edges + 2 two-edge chains. *)
  check Alcotest.int "9 subtrees" 9 (List.length subtrees);
  List.iter
    (fun (rels, conds) ->
      check Alcotest.int "relations = edges + 1"
        (List.length conds + 1)
        (List.length rels))
    subtrees

let test_data_gen () =
  let sys = chain ~relations:3 () in
  let instances = Data_gen.instances (Rng.make ~seed:4) ~rows:20 sys in
  List.iter
    (fun schema ->
      match instances (Schema.name schema) with
      | None -> Alcotest.failf "no instance for %s" (Schema.name schema)
      | Some r ->
        check Alcotest.int "20 rows (unique keys)" 20 (Relation.cardinality r))
    (Catalog.schemas sys.catalog);
  check Alcotest.bool "unknown relation" true (instances "Nope" = None)

let test_data_gen_joins_match () =
  (* domain_scale 1.0: every link value hits a key, joins are total. *)
  let sys = chain ~relations:2 () in
  let instances =
    Data_gen.instances (Rng.make ~seed:4) ~rows:30 ~domain_scale:1.0 sys
  in
  let r0 = Option.get (instances "R0") and r1 = Option.get (instances "R1") in
  let _, _, cond = List.hd sys.edges in
  let joined = Relation.equi_join cond r0 r1 in
  check Alcotest.int "every R0 row joins" 30 (Relation.cardinality joined)

let test_rng_helpers () =
  let rng = Rng.make ~seed:0 in
  check Alcotest.int "int bound 1" 0 (Rng.int rng 1);
  check Alcotest.int "int bound 0 safe" 0 (Rng.int rng 0);
  let xs = [ 1; 2; 3; 4; 5 ] in
  check Alcotest.int "sample size" 3 (List.length (Rng.sample rng 3 xs));
  check Alcotest.int "sample clamps" 5 (List.length (Rng.sample rng 99 xs));
  check Alcotest.bool "nonempty subset" true
    (Rng.nonempty_subset rng ~p:0.0 xs <> []);
  check Alcotest.int "shuffle preserves contents" 15
    (List.fold_left ( + ) 0 (Rng.shuffle rng xs))

let suite =
  [
    c "chain topology" `Quick test_chain_shape;
    c "star topology" `Quick test_star_shape;
    c "random topology" `Quick test_random_topology_connected;
    c "determinism under a seed" `Quick test_determinism;
    c "generator validation" `Quick test_validation;
    c "generated queries are valid" `Quick test_query_gen_valid;
    c "impossible walks return None" `Quick test_query_gen_too_many_joins;
    c "base grants" `Quick test_base_grants;
    c "density extremes" `Quick test_density_extremes;
    c "full density feasible" `Quick test_full_density_makes_feasible;
    c "connected subtrees" `Quick test_connected_subtrees;
    c "data generation" `Quick test_data_gen;
    c "joins match at scale 1" `Quick test_data_gen_joins_match;
    c "rng helpers" `Quick test_rng_helpers;
  ]
