open Relalg
open Authz
module M = Scenario.Medical

let c = Alcotest.test_case
let check = Alcotest.check
let aset names = Attribute.Set.of_list (List.map M.attr names)

let test_base_profile () =
  (* Definition 3.2: base relation R(A1..An) has profile [{A1..An}, ∅, ∅]. *)
  let p = Profile.of_base M.insurance in
  check Helpers.attribute_set "pi" (aset [ "Holder"; "Plan" ]) p.Profile.pi;
  check Alcotest.bool "empty path" true (Joinpath.is_empty p.Profile.join);
  check Alcotest.bool "empty sigma" true
    (Attribute.Set.is_empty p.Profile.sigma)

(* Figure 4, row 1: R := π_X(R_l) has profile [X, Rl^⋈, Rl^σ]. *)
let test_fig4_projection () =
  let base = Profile.of_base M.insurance in
  let with_context =
    Profile.select (aset [ "Plan" ])
      (Profile.make ~pi:base.Profile.pi
         ~join:(Joinpath.singleton (Joinpath.Cond.eq (M.attr "Holder") (M.attr "Patient")))
         ~sigma:Attribute.Set.empty)
  in
  let projected = Profile.project (aset [ "Holder" ]) with_context in
  check Helpers.attribute_set "pi = X" (aset [ "Holder" ]) projected.Profile.pi;
  check Helpers.joinpath "join preserved" with_context.Profile.join
    projected.Profile.join;
  check Helpers.attribute_set "sigma preserved" (aset [ "Plan" ])
    projected.Profile.sigma

(* Figure 4, row 2: R := σ_X(R_l) has profile [Rl^π, Rl^⋈, Rl^σ ∪ X]. *)
let test_fig4_selection () =
  let base = Profile.of_base M.insurance in
  let selected = Profile.select (aset [ "Plan" ]) base in
  check Helpers.attribute_set "pi unchanged" base.Profile.pi
    selected.Profile.pi;
  check Helpers.attribute_set "sigma grows" (aset [ "Plan" ])
    selected.Profile.sigma;
  (* σ accumulates. *)
  let twice = Profile.select (aset [ "Holder" ]) selected in
  check Helpers.attribute_set "sigma accumulates" (aset [ "Plan"; "Holder" ])
    twice.Profile.sigma

(* Figure 4, row 3: R := R_l ⋈_j R_r has profile
   [Rl^π ∪ Rr^π, Rl^⋈ ∪ Rr^⋈ ∪ j, Rl^σ ∪ Rr^σ]. *)
let test_fig4_join () =
  let l = Profile.select (aset [ "Plan" ]) (Profile.of_base M.insurance) in
  let r = Profile.of_base M.hospital in
  let j = Joinpath.Cond.eq (M.attr "Holder") (M.attr "Patient") in
  let joined = Profile.join j l r in
  check Helpers.attribute_set "pi union"
    (aset [ "Holder"; "Plan"; "Patient"; "Disease"; "Physician" ])
    joined.Profile.pi;
  check Helpers.joinpath "path gains j" (Joinpath.singleton j)
    joined.Profile.join;
  check Helpers.attribute_set "sigma union" (aset [ "Plan" ])
    joined.Profile.sigma

let test_join_accumulates_paths () =
  let j1 = Joinpath.Cond.eq (M.attr "Holder") (M.attr "Citizen") in
  let j2 = Joinpath.Cond.eq (M.attr "Citizen") (M.attr "Patient") in
  let p1 =
    Profile.join j1
      (Profile.of_base M.insurance)
      (Profile.of_base M.nat_registry)
  in
  let p2 = Profile.join j2 p1 (Profile.of_base M.hospital) in
  check Helpers.joinpath "both conditions"
    (Joinpath.of_list [ j1; j2 ])
    p2.Profile.join

let test_of_algebra_fig2 () =
  (* The profile of the Example 2.2 query: all attributes of the three
     relations that survive the pushed projections, the two join
     conditions, empty sigma. *)
  let expr = Plan.to_algebra (M.example_plan ()) in
  let p = Profile.of_algebra expr in
  check Helpers.attribute_set "pi = select clause"
    (aset [ "Patient"; "Physician"; "Plan"; "HealthAid" ])
    p.Profile.pi;
  check Helpers.joinpath "path"
    (Joinpath.of_list
       [
         Joinpath.Cond.eq (M.attr "Holder") (M.attr "Citizen");
         Joinpath.Cond.eq (M.attr "Citizen") (M.attr "Patient");
       ])
    p.Profile.join;
  check Alcotest.bool "sigma empty" true (Attribute.Set.is_empty p.Profile.sigma)

let test_visible () =
  let p =
    Profile.make ~pi:(aset [ "Holder" ]) ~join:Joinpath.empty
      ~sigma:(aset [ "Plan" ])
  in
  check Helpers.attribute_set "pi ∪ sigma" (aset [ "Holder"; "Plan" ])
    (Profile.visible p)

let test_equality () =
  let p1 = Profile.of_base M.insurance in
  let p2 = Profile.of_base M.insurance in
  check Helpers.profile "reflexive" p1 p2;
  let p3 = Profile.select (aset [ "Plan" ]) p1 in
  check Alcotest.bool "sigma matters" false (Profile.equal p1 p3)

(* Property: of_algebra's sigma and pi are consistent with the
   operators applied, for random project/select towers. *)
let prop_profile_tower =
  let arb = QCheck.(list_of_size Gen.(0 -- 6) (pair bool (int_bound 1))) in
  QCheck.Test.make ~name:"profile tower invariants" ~count:200 arb (fun ops ->
      let attrs = [ M.attr "Holder"; M.attr "Plan" ] in
      let expr =
        List.fold_left
          (fun e (is_select, which) ->
            let a = List.nth attrs which in
            if is_select then
              Algebra.Select
                (Predicate.Cmp (a, Eq, Const (Value.Int 0)), e)
            else e)
          (Algebra.Relation M.insurance) ops
      in
      let p = Profile.of_algebra expr in
      (* pi never grows beyond the base schema; sigma within pi of
         base; path stays empty without joins. *)
      Attribute.Set.subset p.Profile.pi
        (Schema.attribute_set M.insurance)
      && Attribute.Set.subset p.Profile.sigma
           (Schema.attribute_set M.insurance)
      && Joinpath.is_empty p.Profile.join)

let suite =
  [
    c "base profile (Def 3.2)" `Quick test_base_profile;
    c "Figure 4 row 1: projection" `Quick test_fig4_projection;
    c "Figure 4 row 2: selection" `Quick test_fig4_selection;
    c "Figure 4 row 3: join" `Quick test_fig4_join;
    c "join paths accumulate" `Quick test_join_accumulates_paths;
    c "of_algebra on Figure 2 plan" `Quick test_of_algebra_fig2;
    c "visible = pi ∪ sigma" `Quick test_visible;
    c "equality" `Quick test_equality;
    Helpers.qcheck prop_profile_tower;
  ]
