open Planner
module SC = Scenario.Supply_chain
module M = Scenario.Medical

let c = Alcotest.test_case
let check = Alcotest.check

let test_pricing_rescued () =
  match
    Third_party.plan ~helpers:[ SC.s_b ] SC.catalog SC.policy
      (SC.pricing_plan ())
  with
  | Ok { assignment; rescues } ->
    (match rescues with
     | [ r ] ->
       check Alcotest.int "join node" 1 r.Third_party.node;
       check Helpers.server "broker" SC.s_b r.Third_party.helper
     | _ -> Alcotest.fail "expected exactly one rescue");
    check Alcotest.bool "safe under third-party rules" true
      (Safety.is_safe ~third_party:true SC.catalog SC.policy
         (SC.pricing_plan ()) assignment)
  | Error _ -> Alcotest.fail "broker should rescue the pricing query"

let test_no_helpers_no_rescue () =
  match Third_party.plan ~helpers:[] SC.catalog SC.policy (SC.pricing_plan ()) with
  | Ok _ -> Alcotest.fail "rescued without helpers"
  | Error f -> check Alcotest.int "failing node" 1 f.Third_party.failed_at

let test_unqualified_helper () =
  (* S_L has no grants on Orders or Parts: it cannot act as the
     broker. *)
  match
    Third_party.plan ~helpers:[ SC.s_l ] SC.catalog SC.policy
      (SC.pricing_plan ())
  with
  | Ok _ -> Alcotest.fail "unqualified helper accepted"
  | Error f ->
    check
      Alcotest.(list Helpers.server)
      "tried helpers recorded" [ SC.s_l ] f.Third_party.tried

let test_no_rescue_needed () =
  (* A feasible plan gains no rescues even with helpers available. *)
  match
    Third_party.plan ~helpers:[ SC.s_b ] SC.catalog SC.policy
      (SC.tracking_plan ())
  with
  | Ok { rescues; _ } -> check Alcotest.int "no rescues" 0 (List.length rescues)
  | Error _ -> Alcotest.fail "tracking query is feasible"

let test_medical_never_needs_helpers () =
  match
    Third_party.plan ~helpers:[ M.s_d ] M.catalog M.policy (M.example_plan ())
  with
  | Ok { rescues; _ } -> check Alcotest.int "no rescues" 0 (List.length rescues)
  | Error _ -> Alcotest.fail "medical plan is feasible"

let test_execution_through_proxy () =
  match
    Third_party.plan ~helpers:[ SC.s_b ] SC.catalog SC.policy
      (SC.pricing_plan ())
  with
  | Error _ -> Alcotest.fail "not rescued"
  | Ok { assignment; _ } ->
    (match
       Distsim.Engine.execute ~third_party:true SC.catalog
         ~instances:SC.instances (SC.pricing_plan ()) assignment
     with
     | Error e -> Alcotest.failf "%a" Distsim.Engine.pp_error e
     | Ok { result; location; network; _ } ->
       check Helpers.server "result at broker" SC.s_b location;
       check Helpers.relation "matches centralized"
         (Distsim.Engine.centralized ~instances:SC.instances
            (SC.pricing_plan ()))
         result;
       check Alcotest.bool "audit clean" true
         (Distsim.Audit.is_clean SC.policy network);
       (* The proxy receives exactly two messages (both operands). *)
       check Alcotest.int "two transfers" 2
         (Distsim.Network.message_count network))

let suite =
  [
    c "pricing query rescued by broker" `Quick test_pricing_rescued;
    c "no helpers, no rescue" `Quick test_no_helpers_no_rescue;
    c "unqualified helper rejected" `Quick test_unqualified_helper;
    c "feasible plans gain no rescues" `Quick test_no_rescue_needed;
    c "medical plan unaffected" `Quick test_medical_never_needs_helpers;
    c "execution through the proxy" `Quick test_execution_through_proxy;
  ]
