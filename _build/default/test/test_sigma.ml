(* Selection attributes as disclosure (the R^sigma component).

   Pushing a WHERE down to a leaf does not only filter tuples: the
   condition's attributes join the profile's sigma set and count as
   released information (Definition 3.3 checks pi ∪ sigma). These
   end-to-end cases pin the behaviour on the paper's example. *)

open Relalg
open Planner
module M = Scenario.Medical

let c = Alcotest.test_case
let check = Alcotest.check

let with_where w =
  Query.to_plan
    (Sql_parser.parse_exn M.catalog (M.example_query_sql ^ " WHERE " ^ w))

let test_sigma_carried_in_flows () =
  let plan = with_where "Plan = 'gold'" in
  match Safe_planner.plan M.catalog M.policy plan with
  | Error f -> Alcotest.failf "%a" Safe_planner.pp_failure f
  | Ok { assignment; _ } ->
    let flows =
      Helpers.check_ok Safety.pp_error (Safety.flows M.catalog plan assignment)
    in
    (* The Insurance transfer and the semi-join answer both carry
       sigma = {Plan}. *)
    let plan_attr = Attribute.Set.singleton (M.attr "Plan") in
    (match flows with
     | [ first; _; last ] ->
       check Helpers.attribute_set "sigma on the shipped operand" plan_attr
         first.Safety.profile.Authz.Profile.sigma;
       check Helpers.attribute_set "sigma survives the join" plan_attr
         last.Safety.profile.Authz.Profile.sigma
     | _ -> Alcotest.fail "expected three flows")

let test_sigma_execution_correct () =
  let plan = with_where "Plan = 'gold'" in
  match Safe_planner.plan M.catalog M.policy plan with
  | Error f -> Alcotest.failf "%a" Safe_planner.pp_failure f
  | Ok { assignment; _ } ->
    (match
       Distsim.Engine.execute M.catalog ~instances:M.instances plan assignment
     with
     | Error e -> Alcotest.failf "%a" Distsim.Engine.pp_error e
     | Ok { result; network; _ } ->
       (* Only c1 holds a gold plan among the joined population. *)
       check Alcotest.int "one gold patient" 1 (Relation.cardinality result);
       check Helpers.relation "matches centralized"
         (Distsim.Engine.centralized ~instances:M.instances plan)
         result;
       check Alcotest.bool "audit clean" true
         (Distsim.Audit.is_clean M.policy network))

let test_sigma_can_block () =
  (* WHERE Physician = ... pushes sigma = {Physician} onto the Hospital
     side; the semi-join's forward leg would then reveal to S_N that
     the shipped Patient ids were filtered by Physician — and S_N's
     authorization 10 covers {Patient, Disease} only. The query becomes
     infeasible even though the same query without the filter is the
     paper's own feasible example. *)
  let plan = with_where "Physician = 'Dr.Kay'" in
  (match Safe_planner.plan M.catalog M.policy plan with
   | Error f -> check Alcotest.int "blocked at the top join" 1 f.failed_at
   | Ok _ -> Alcotest.fail "sigma leak admitted");
  (* Exhaustive agrees: no safe assignment at all. *)
  check Alcotest.bool "exhaustively infeasible" false
    (Exhaustive.feasible M.catalog M.policy plan)

let test_sigma_on_registry_side_fine () =
  (* WHERE HealthAid = ... pushes onto Nat_registry; S_N filters its
     own data, and the final answer's sigma = {HealthAid} is within
     S_H's authorization 7. *)
  let plan = with_where "HealthAid = 'full'" in
  match Safe_planner.plan M.catalog M.policy plan with
  | Error f -> Alcotest.failf "%a" Safe_planner.pp_failure f
  | Ok { assignment; _ } ->
    check Alcotest.bool "safe" true
      (Safety.is_safe M.catalog M.policy plan assignment)

let test_grant_restores_sigma_blocked_query () =
  (* Granting S_N the Physician attribute (with empty path, alongside
     Patient) repairs the blocked query — and the advisor finds a
     repair on its own. *)
  let plan = with_where "Physician = 'Dr.Kay'" in
  let extended =
    Authz.Policy.add
      (Authz.Authorization.make_exn
         ~attrs:
           (Attribute.Set.of_list
              (List.map M.attr [ "Patient"; "Disease"; "Physician" ]))
         ~path:Joinpath.empty M.s_n)
      M.policy
  in
  check Alcotest.bool "feasible after the grant" true
    (Safe_planner.feasible M.catalog extended plan);
  match Advisor.advise M.catalog M.policy plan with
  | Some { assignment; extended; _ } ->
    check Alcotest.bool "advisor repair is safe" true
      (Safety.is_safe M.catalog extended plan assignment)
  | None -> Alcotest.fail "advisor found no repair"

let suite =
  [
    c "sigma carried in flow profiles" `Quick test_sigma_carried_in_flows;
    c "filtered query executes correctly" `Quick test_sigma_execution_correct;
    c "sigma can make the paper's example infeasible" `Quick
      test_sigma_can_block;
    c "sigma on the owner's side is fine" `Quick
      test_sigma_on_registry_side_fine;
    c "grants (and the advisor) repair sigma blocks" `Quick
      test_grant_restores_sigma_blocked_query;
  ]
