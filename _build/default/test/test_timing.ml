open Relalg
open Distsim
module M = Scenario.Medical

let c = Alcotest.test_case
let check = Alcotest.check
let checkf = Alcotest.check (Alcotest.float 1e-9)

let medical_outcome () =
  let plan = M.example_plan () in
  let assignment =
    match Planner.Safe_planner.plan M.catalog M.policy plan with
    | Ok r -> r.Planner.Safe_planner.assignment
    | Error f -> Alcotest.failf "%a" Planner.Safe_planner.pp_failure f
  in
  let outcome =
    match Engine.execute M.catalog ~instances:M.instances plan assignment with
    | Ok o -> o
    | Error e -> Alcotest.failf "%a" Engine.pp_error e
  in
  (plan, assignment, outcome)

let test_node_rows_recorded () =
  let plan, _, outcome = medical_outcome () in
  check Alcotest.int "one entry per node" (Plan.size plan)
    (List.length outcome.Engine.node_rows);
  (* Leaves match the instances. *)
  check Alcotest.(option int) "Insurance rows" (Some 5)
    (List.assoc_opt 4 outcome.Engine.node_rows);
  check Alcotest.(option int) "Nat_registry rows" (Some 8)
    (List.assoc_opt 5 outcome.Engine.node_rows);
  check Alcotest.(option int) "result rows" (Some 3)
    (List.assoc_opt 0 outcome.Engine.node_rows)

let test_makespan_positive_and_ordered () =
  let plan, assignment, outcome = medical_outcome () in
  let model = Timing.uniform () in
  let schedule = Timing.makespan model plan assignment outcome in
  check Alcotest.int "every node scheduled" (Plan.size plan)
    (List.length schedule.Timing.finish);
  check Alcotest.bool "positive makespan" true (schedule.Timing.makespan > 0.0);
  (* A node never finishes before its children. *)
  List.iter
    (fun (n : Plan.node) ->
      let t id = List.assoc id schedule.Timing.finish in
      List.iter
        (fun (child : Plan.node) ->
          check Alcotest.bool
            (Printf.sprintf "n%d after n%d" n.id child.Plan.id)
            true
            (t n.id >= t child.Plan.id))
        (Plan.children n))
    (Plan.nodes plan);
  (* The root completion is the makespan. *)
  checkf "root = makespan" schedule.Timing.makespan
    (List.assoc 0 schedule.Timing.finish)

(* A single-join fixture (the supply-chain tracking query, planned as
   a semi-join) plus its hand-built regular variant, for unambiguous
   critical paths. *)
let tracking_outcomes () =
  let module SC = Scenario.Supply_chain in
  let plan = SC.tracking_plan () in
  let semi_assignment =
    match Planner.Safe_planner.plan SC.catalog SC.policy plan with
    | Ok r -> r.Planner.Safe_planner.assignment
    | Error f -> Alcotest.failf "%a" Planner.Safe_planner.pp_failure f
  in
  let regular_assignment =
    (* Structurally valid (not authorized — timing only). *)
    Planner.Assignment.set 1
      (Planner.Assignment.executor SC.s_m)
      semi_assignment
  in
  let run assignment =
    match Engine.execute SC.catalog ~instances:SC.instances plan assignment with
    | Ok o -> o
    | Error e -> Alcotest.failf "%a" Engine.pp_error e
  in
  (plan, (semi_assignment, run semi_assignment),
   (regular_assignment, run regular_assignment))

let latency_only latency =
  {
    Timing.link = (fun _ _ -> { Timing.latency; bandwidth = infinity });
    per_tuple = 0.0;
  }

let test_semijoin_pays_two_latencies () =
  let plan, (semi_a, semi_o), (reg_a, reg_o) = tracking_outcomes () in
  let semi = (Timing.makespan (latency_only 1.0) plan semi_a semi_o).Timing.makespan in
  let regular = (Timing.makespan (latency_only 1.0) plan reg_a reg_o).Timing.makespan in
  checkf "semi-join: two latencies" 2.0 semi;
  checkf "regular join: one latency" 1.0 regular

let test_medical_overlap () =
  (* On the medical plan the semi-join's forward leg overlaps the
     regular transfer feeding n2, so the total critical path is two
     latencies, not three — the schedule captures pipeline overlap. *)
  let plan, assignment, outcome = medical_outcome () in
  let schedule = Timing.makespan (latency_only 1.0) plan assignment outcome in
  checkf "two latencies despite three messages" 2.0 schedule.Timing.makespan

let test_regular_join_single_latency () =
  (* Mirror n1 into a regular join (structurally valid): its critical
     path drops to one latency after n2's one: total 2. *)
  let plan, assignment, _ = medical_outcome () in
  let regular = Planner.Assignment.set 1 (Planner.Assignment.executor M.s_h) assignment in
  let outcome =
    match Engine.execute M.catalog ~instances:M.instances plan regular with
    | Ok o -> o
    | Error e -> Alcotest.failf "%a" Engine.pp_error e
  in
  let model =
    {
      Timing.link = (fun _ _ -> { Timing.latency = 1.0; bandwidth = infinity });
      per_tuple = 0.0;
    }
  in
  let schedule = Timing.makespan model plan regular outcome in
  checkf "two latencies" 2.0 schedule.Timing.makespan

let test_bandwidth_dominates_when_slow () =
  (* Very slow link: makespan ≈ bytes/bandwidth; semi-join (96 bytes
     in the medical run) finishes measurably sooner than the regular
     variant, which ships more. *)
  let plan, assignment, outcome = medical_outcome () in
  let slow latency = {
    Timing.link = (fun _ _ -> { Timing.latency; bandwidth = 10.0 });
    per_tuple = 0.0;
  } in
  let semi = (Timing.makespan (slow 0.0) plan assignment outcome).Timing.makespan in
  let regular_assignment =
    Planner.Assignment.set 1 (Planner.Assignment.executor M.s_h) assignment
  in
  let regular_outcome =
    match
      Engine.execute M.catalog ~instances:M.instances plan regular_assignment
    with
    | Ok o -> o
    | Error e -> Alcotest.failf "%a" Engine.pp_error e
  in
  let regular =
    (Timing.makespan (slow 0.0) plan regular_assignment regular_outcome)
      .Timing.makespan
  in
  check Alcotest.bool
    (Fmt.str "semi %.2f < regular %.2f on slow links" semi regular)
    true (semi < regular)

let test_crossover_with_latency () =
  (* The same two assignments on a fast, high-latency link: the extra
     round trip makes the semi-join lose. This is the EXP-H
     crossover. *)
  let plan, (semi_a, semi_o), (reg_a, reg_o) = tracking_outcomes () in
  let fast = {
    Timing.link = (fun _ _ -> { Timing.latency = 1.0; bandwidth = 1e9 });
    per_tuple = 0.0;
  } in
  let semi = (Timing.makespan fast plan semi_a semi_o).Timing.makespan in
  let regular = (Timing.makespan fast plan reg_a reg_o).Timing.makespan in
  check Alcotest.bool
    (Fmt.str "regular %.2f < semi %.2f on fast links" regular semi)
    true (regular < semi)

let test_proxy_timing () =
  (* The broker-proxied pricing query: both operands travel, one
     latency each in parallel, so exactly one latency end-to-end. *)
  let module SC = Scenario.Supply_chain in
  let plan = SC.pricing_plan () in
  let assignment =
    match
      Planner.Third_party.plan ~helpers:[ SC.s_b ] SC.catalog SC.policy plan
    with
    | Ok r -> r.Planner.Third_party.assignment
    | Error _ -> Alcotest.fail "not rescued"
  in
  let outcome =
    match
      Engine.execute ~third_party:true SC.catalog ~instances:SC.instances
        plan assignment
    with
    | Ok o -> o
    | Error e -> Alcotest.failf "%a" Engine.pp_error e
  in
  let schedule = Timing.makespan (latency_only 1.0) plan assignment outcome in
  checkf "one parallel latency" 1.0 schedule.Timing.makespan

let test_mismatched_outcome_rejected () =
  let plan, assignment, _ = medical_outcome () in
  let other_plan = Scenario.Supply_chain.tracking_plan () in
  let other_outcome =
    let a =
      match
        Planner.Safe_planner.plan Scenario.Supply_chain.catalog
          Scenario.Supply_chain.policy other_plan
      with
      | Ok r -> r.Planner.Safe_planner.assignment
      | Error _ -> assert false
    in
    match
      Engine.execute Scenario.Supply_chain.catalog
        ~instances:Scenario.Supply_chain.instances other_plan a
    with
    | Ok o -> o
    | Error _ -> assert false
  in
  match Timing.makespan (Timing.uniform ()) plan assignment other_outcome with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "mismatched outcome accepted"

let suite =
  [
    c "node_rows recorded" `Quick test_node_rows_recorded;
    c "makespan is positive and respects dependencies" `Quick
      test_makespan_positive_and_ordered;
    c "semi-join pays two latencies" `Quick test_semijoin_pays_two_latencies;
    c "pipeline overlap on the medical plan" `Quick test_medical_overlap;
    c "regular join pays one latency" `Quick test_regular_join_single_latency;
    c "slow links favour semi-joins" `Quick test_bandwidth_dominates_when_slow;
    c "fast high-latency links favour regular joins" `Quick
      test_crossover_with_latency;
    c "proxy join: one parallel latency" `Quick test_proxy_timing;
    c "mismatched outcome rejected" `Quick test_mismatched_outcome_rejected;
  ]
