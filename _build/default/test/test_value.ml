open Relalg

let check = Alcotest.check
let c = Alcotest.test_case

let test_compare_same_type () =
  check Alcotest.bool "int order" true (Value.compare (Int 1) (Int 2) < 0);
  check Alcotest.bool "string order" true
    (Value.compare (String "a") (String "b") < 0);
  check Alcotest.bool "float order" true
    (Value.compare (Float 1.5) (Float 1.25) > 0);
  check Alcotest.bool "bool order" true
    (Value.compare (Bool false) (Bool true) < 0);
  check Alcotest.int "null eq" 0 (Value.compare Null Null)

let test_compare_numeric_mix () =
  check Alcotest.int "int = float" 0 (Value.compare (Int 2) (Float 2.0));
  check Alcotest.bool "int < float" true
    (Value.compare (Int 2) (Float 2.5) < 0);
  check Alcotest.bool "float > int" true
    (Value.compare (Float 2.5) (Int 2) > 0)

let test_compare_cross_type () =
  (* Fixed type ranks: Null < Bool < Int/Float < String. *)
  check Alcotest.bool "null < bool" true (Value.compare Null (Bool false) < 0);
  check Alcotest.bool "bool < int" true (Value.compare (Bool true) (Int 0) < 0);
  check Alcotest.bool "int < string" true
    (Value.compare (Int 999) (String "") < 0)

let test_equal_hash_compatible () =
  let pairs = [ (Value.Int 3, Value.Float 3.0); (Int 7, Int 7) ] in
  List.iter
    (fun (a, b) ->
      check Alcotest.bool "equal" true (Value.equal a b);
      check Alcotest.int "hash agrees" (Value.hash a) (Value.hash b))
    pairs

let test_of_literal () =
  check Helpers.value "null" Null (Value.of_literal "NULL");
  check Helpers.value "null lc" Null (Value.of_literal "null");
  check Helpers.value "true" (Bool true) (Value.of_literal "true");
  check Helpers.value "int" (Int 42) (Value.of_literal "42");
  check Helpers.value "neg int" (Int (-3)) (Value.of_literal "-3");
  check Helpers.value "float" (Float 2.5) (Value.of_literal "2.5");
  check Helpers.value "quoted" (String "a b") (Value.of_literal "'a b'");
  check Helpers.value "bare word" (String "hello") (Value.of_literal "hello");
  check Helpers.value "trimmed" (Int 7) (Value.of_literal "  7  ")

let test_byte_width () =
  check Alcotest.int "null" 1 (Value.byte_width Null);
  check Alcotest.int "bool" 1 (Value.byte_width (Bool true));
  check Alcotest.int "int" 8 (Value.byte_width (Int 5));
  check Alcotest.int "float" 8 (Value.byte_width (Float 5.0));
  check Alcotest.int "string" 5 (Value.byte_width (String "abcde"))

let test_type_name () =
  check Alcotest.string "int" "int" (Value.type_name (Int 1));
  check Alcotest.string "null" "null" (Value.type_name Null)

let test_pp () =
  check Alcotest.string "string quoted" "'x'" (Value.to_string (String "x"));
  check Alcotest.string "null caps" "NULL" (Value.to_string Null)

let arb_value =
  QCheck.(
    oneof
      [
        always Value.Null;
        map (fun b -> Value.Bool b) bool;
        map (fun i -> Value.Int i) small_signed_int;
        map (fun f -> Value.Float f) (float_bound_exclusive 1000.0);
        map (fun s -> Value.String s) small_printable_string;
      ])

let prop_compare_antisym =
  QCheck.Test.make ~name:"value compare antisymmetric" ~count:500
    QCheck.(pair arb_value arb_value)
    (fun (a, b) -> Value.compare a b = -Value.compare b a)

let prop_compare_refl =
  QCheck.Test.make ~name:"value compare reflexive" ~count:200 arb_value
    (fun a -> Value.compare a a = 0)

let prop_equal_hash =
  QCheck.Test.make ~name:"equal values hash equally" ~count:500
    QCheck.(pair arb_value arb_value)
    (fun (a, b) ->
      QCheck.assume (Value.equal a b);
      Value.hash a = Value.hash b)

let suite =
  [
    c "compare within types" `Quick test_compare_same_type;
    c "compare int/float numerically" `Quick test_compare_numeric_mix;
    c "compare across types by rank" `Quick test_compare_cross_type;
    c "equal implies same hash" `Quick test_equal_hash_compatible;
    c "of_literal" `Quick test_of_literal;
    c "byte_width" `Quick test_byte_width;
    c "type_name" `Quick test_type_name;
    c "pretty-printing" `Quick test_pp;
    Helpers.qcheck prop_compare_antisym;
    Helpers.qcheck prop_compare_refl;
    Helpers.qcheck prop_equal_hash;
  ]
