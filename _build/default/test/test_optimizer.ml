open Relalg
open Planner
module M = Scenario.Medical

let c = Alcotest.test_case
let check = Alcotest.check

let model = Cost.uniform ~card:100.0

let test_orders_of_example () =
  let q = M.example_query () in
  let orders = Optimizer.valid_orders q in
  (* Original first. *)
  check Alcotest.(list string) "original first"
    [ "Insurance"; "Nat_registry"; "Hospital" ]
    (List.hd orders);
  (* Chain Insurance–Nat_registry–Hospital: connected orders are the
     walks of a path graph: 2 ends x forward + center-start x 2 = 4. *)
  check Alcotest.int "four connected orders" 4 (List.length orders);
  (* All are permutations. *)
  List.iter
    (fun order ->
      check Alcotest.(list string) "permutation"
        [ "Hospital"; "Insurance"; "Nat_registry" ]
        (List.sort compare order))
    orders

let test_single_relation_order () =
  let q =
    Helpers.check_ok Query.pp_error
      (Query.make M.catalog
         ~select:[ M.attr "Holder" ]
         ~base:"Insurance" ~joins:[] ~where:Predicate.True)
  in
  check Alcotest.(list (list string)) "just the base" [ [ "Insurance" ] ]
    (Optimizer.valid_orders q)

let test_reorder_same_results () =
  (* Every valid order computes the same answer. *)
  let q = M.example_query () in
  let reference =
    Distsim.Engine.centralized ~instances:M.instances (Query.to_plan q)
  in
  List.iter
    (fun order ->
      let q' = Optimizer.reorder M.catalog q order in
      let result =
        Distsim.Engine.centralized ~instances:M.instances (Query.to_plan q')
      in
      check Helpers.relation
        (String.concat "," order)
        reference result)
    (Optimizer.valid_orders q)

let test_reorder_validation () =
  let q = M.example_query () in
  (match Optimizer.reorder M.catalog q [ "Insurance" ] with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "non-permutation accepted");
  match
    (* Hospital does not connect directly to Insurance..wait it does
       (Holder=Patient is in the join graph but NOT in this query's
       conditions) — the query's conditions are Holder=Citizen and
       Citizen=Patient, so Insurance,Hospital,... has no condition to
       attach at step 2. *)
    Optimizer.reorder M.catalog q [ "Insurance"; "Hospital"; "Nat_registry" ]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "disconnected prefix accepted"

let test_optimize_medical () =
  let t = Optimizer.optimize model M.catalog M.policy (M.example_query ()) in
  (match t.best with
   | None -> Alcotest.fail "no feasible order"
   | Some best ->
     (* The default order is feasible, so best can only be cheaper or
        equal. *)
     (match (List.hd t.explored).outcome with
      | Optimizer.Feasible (_, default_cost) ->
        (match best.outcome with
         | Optimizer.Feasible (_, best_cost) ->
           check Alcotest.bool "best <= default" true
             (best_cost <= default_cost)
         | Optimizer.Infeasible _ -> Alcotest.fail "best infeasible?")
      | Optimizer.Infeasible _ -> Alcotest.fail "default infeasible?"));
  check Alcotest.int "all four orders explored" 4 (List.length t.explored);
  check Alcotest.bool "not truncated" false t.truncated

(* A federation where the written order is infeasible but another
   order is safe: reordering recovers feasibility, not just cost. *)
let reorder_rescue_fixture () =
  let sa = Server.make "SA" and sb = Server.make "SB" and sc = Server.make "SC" in
  let a = Schema.make "A" ~key:[ "Ax" ] [ "Ax"; "Adata" ] in
  let b = Schema.make "B" ~key:[ "Bx" ] [ "Bx"; "By"; "Bdata" ] in
  let cc = Schema.make "C" ~key:[ "Cy" ] [ "Cy"; "Cdata" ] in
  let catalog = Catalog.of_list [ (a, sa); (b, sb); (cc, sc) ] in
  let attr name =
    Helpers.check_ok Catalog.pp_error (Catalog.resolve_attribute catalog name)
  in
  let by_cy = Joinpath.Cond.eq (attr "By") (attr "Cy") in
  let auth attrs path server =
    Authz.Authorization.make_exn
      ~attrs:(Attribute.Set.of_list (List.map attr attrs))
      ~path:(Joinpath.of_list path) server
  in
  let policy =
    Authz.Policy.of_list
      [
        auth [ "Ax"; "Adata" ] [] sa;
        auth [ "Bx"; "By"; "Bdata" ] [] sb;
        auth [ "Cy"; "Cdata" ] [] sc;
        (* SB may read C in full: it can master B ⋈ C. *)
        auth [ "Cy"; "Cdata" ] [] sb;
        (* SA may read the B ⋈ C view in full: it can master the final
           join — but nothing lets anybody join A with B directly. *)
        auth [ "Bx"; "By"; "Bdata"; "Cy"; "Cdata" ] [ by_cy ] sa;
      ]
  in
  let query =
    Sql_parser.parse_exn catalog
      "SELECT Adata, Bdata, Cdata FROM A JOIN B ON Ax = Bx JOIN C ON By = Cy"
  in
  (catalog, policy, query)

let test_reordering_recovers_feasibility () =
  let catalog, policy, query = reorder_rescue_fixture () in
  (* Default order: infeasible. *)
  check Alcotest.bool "A⋈B first is blocked" false
    (Safe_planner.feasible catalog policy (Query.to_plan query));
  (* The optimizer finds the B,C,A order. *)
  let t = Optimizer.optimize model catalog policy query in
  match t.best with
  | None -> Alcotest.fail "optimizer found nothing"
  | Some best ->
    check Alcotest.(list string) "B joins C first" [ "B"; "C"; "A" ] best.order;
    (match best.outcome with
     | Optimizer.Feasible (assignment, _) ->
       check Alcotest.bool "and it is safe" true
         (Safety.is_safe catalog policy best.plan assignment)
     | Optimizer.Infeasible _ -> Alcotest.fail "best not feasible")

let test_optimized_plan_executes () =
  let catalog, policy, query = reorder_rescue_fixture () in
  let t = Optimizer.optimize model catalog policy query in
  let best = Option.get t.best in
  let assignment =
    match best.outcome with
    | Optimizer.Feasible (a, _) -> a
    | Optimizer.Infeasible _ -> assert false
  in
  let v s = Value.String s in
  let instances =
    let a = Helpers.check_ok Catalog.pp_error (Catalog.relation catalog "A") in
    let b = Helpers.check_ok Catalog.pp_error (Catalog.relation catalog "B") in
    let cc = Helpers.check_ok Catalog.pp_error (Catalog.relation catalog "C") in
    let table =
      [
        ("A", Relation.of_rows a [ [ v "k1"; v "a1" ]; [ v "k2"; v "a2" ] ]);
        ( "B",
          Relation.of_rows b
            [ [ v "k1"; v "y1"; v "b1" ]; [ v "k3"; v "y2"; v "b3" ] ] );
        ("C", Relation.of_rows cc [ [ v "y1"; v "c1" ]; [ v "y9"; v "c9" ] ]);
      ]
    in
    fun name -> List.assoc_opt name table
  in
  match Distsim.Engine.execute catalog ~instances best.plan assignment with
  | Error e -> Alcotest.failf "%a" Distsim.Engine.pp_error e
  | Ok { result; network; _ } ->
    check Helpers.relation "matches centralized"
      (Distsim.Engine.centralized ~instances best.plan)
      result;
    check Alcotest.int "single joined row" 1 (Relation.cardinality result);
    check Alcotest.bool "audit clean" true
      (Distsim.Audit.is_clean policy network)

let test_max_orders_cap () =
  let q = M.example_query () in
  let t = Optimizer.optimize ~max_orders:1 model M.catalog M.policy q in
  check Alcotest.bool "truncated" true t.truncated;
  check Alcotest.int "original + capped alternatives" 2
    (List.length t.explored)

let suite =
  [
    c "connected orders of the example" `Quick test_orders_of_example;
    c "single-relation query" `Quick test_single_relation_order;
    c "all orders compute the same result" `Quick test_reorder_same_results;
    c "reorder validation" `Quick test_reorder_validation;
    c "optimizer on the medical example" `Quick test_optimize_medical;
    c "reordering recovers feasibility" `Quick
      test_reordering_recovers_feasibility;
    c "optimized plan executes and audits clean" `Quick
      test_optimized_plan_executes;
    c "max_orders cap" `Quick test_max_orders_cap;
  ]
