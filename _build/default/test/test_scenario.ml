open Relalg
module M = Scenario.Medical
module SC = Scenario.Supply_chain

let c = Alcotest.test_case
let check = Alcotest.check

let test_medical_catalog () =
  check Alcotest.int "four relations" 4
    (List.length (Catalog.schemas M.catalog));
  check Alcotest.int "four servers" 4
    (Server.Set.cardinal (Catalog.servers M.catalog));
  check Helpers.server "Insurance at S_I" M.s_i
    (Helpers.check_ok Catalog.pp_error (Catalog.server_of M.catalog "Insurance"))

let test_medical_instances_consistent () =
  List.iter
    (fun schema ->
      match M.instances (Schema.name schema) with
      | None -> Alcotest.failf "no instance for %s" (Schema.name schema)
      | Some r ->
        check Helpers.attribute_set
          (Schema.name schema)
          (Schema.attribute_set schema)
          (Relation.attribute_set r))
    (Catalog.schemas M.catalog)

let test_medical_example_nonempty () =
  let result =
    Distsim.Engine.centralized ~instances:M.instances (M.example_plan ())
  in
  check Alcotest.bool "joins are non-trivial" true
    (Relation.cardinality result > 0)

let test_join_graph_edges () =
  check Alcotest.int "four edges (Figure 1 lines)" 4
    (List.length M.join_graph)

let test_figures_render () =
  let module F = Scenario.Paper_figures in
  List.iter
    (fun (name, s) ->
      check Alcotest.bool (name ^ " non-empty") true (String.length s > 40))
    [
      ("fig1", F.fig1_schema ());
      ("fig2", F.fig2_query_plan ());
      ("fig3", F.fig3_authorizations ());
      ("fig4", F.fig4_profile_rules ());
      ("fig5", F.fig5_execution_modes ());
      ("fig7", F.fig7_algorithm_trace ());
      ("all", F.all ());
    ]

let test_fig3_content () =
  let s = Scenario.Paper_figures.fig3_authorizations () in
  (* Spot-check three rules of Figure 3. *)
  List.iter
    (fun fragment ->
      check Alcotest.bool fragment true (Helpers.contains ~sub:fragment s))
    [
      "[{Holder, Plan}, -] -> S_I";
      "[{Illness, Treatment}, -] -> S_D";
      "-> S_N";
    ]

let test_fig7_content () =
  let s = Scenario.Paper_figures.fig7_algorithm_trace () in
  List.iter
    (fun fragment ->
      check Alcotest.bool fragment true (Helpers.contains ~sub:fragment s))
    [ "[S_I, -, 0]"; "[S_N, right, 1]"; "[S_H, S_N]"; "Assign_ex" ]

let test_supply_chain_design () =
  (* The three design properties the scenario documents. *)
  check Alcotest.bool "pricing infeasible" false
    (Planner.Safe_planner.feasible SC.catalog SC.policy (SC.pricing_plan ()));
  check Alcotest.bool "pricing rescued" true
    (Planner.Safe_planner.feasible ~helpers:[ SC.s_b ] SC.catalog SC.policy
       (SC.pricing_plan ()));
  check Alcotest.bool "tracking feasible" true
    (Planner.Safe_planner.feasible SC.catalog SC.policy (SC.tracking_plan ()));
  let regular_only =
    { Planner.Safe_planner.allow_semijoins = false; allow_regular = true;
      prefer_high_count = true }
  in
  check Alcotest.bool "tracking needs semi-joins" false
    (Planner.Safe_planner.feasible ~config:regular_only SC.catalog SC.policy
       (SC.tracking_plan ()))

let test_supply_chain_customers_semijoin () =
  match
    Planner.Safe_planner.plan SC.catalog SC.policy (SC.customers_plan ())
  with
  | Error f -> Alcotest.failf "%a" Planner.Safe_planner.pp_failure f
  | Ok { assignment; _ } ->
    let top = Planner.Assignment.find assignment 1 in
    check Helpers.server "supplier masters" SC.s_p top.Planner.Assignment.master;
    check Alcotest.bool "as a semi-join" true
      (top.Planner.Assignment.slave = Some SC.s_m)

let test_supply_chain_instances () =
  List.iter
    (fun schema ->
      match SC.instances (Schema.name schema) with
      | None -> Alcotest.failf "no instance for %s" (Schema.name schema)
      | Some r -> check Alcotest.bool "non-empty" true (Relation.cardinality r > 0))
    (Catalog.schemas SC.catalog)

let suite =
  [
    c "medical catalog" `Quick test_medical_catalog;
    c "medical instances match schemas" `Quick test_medical_instances_consistent;
    c "medical example query non-empty" `Quick test_medical_example_nonempty;
    c "join graph has Figure 1's edges" `Quick test_join_graph_edges;
    c "paper figures render" `Quick test_figures_render;
    c "Figure 3 content" `Quick test_fig3_content;
    c "Figure 7 content" `Quick test_fig7_content;
    c "supply-chain design properties" `Quick test_supply_chain_design;
    c "customers query is a supplier semi-join" `Quick
      test_supply_chain_customers_semijoin;
    c "supply-chain instances" `Quick test_supply_chain_instances;
  ]
