(* Composite (multi-pair) equi-join conditions through the whole stack:
   ⟨(A1,B1), (A2,B2)⟩ conditions in profiles, planning, the semi-join
   protocol and the script compiler. *)

open Relalg
open Planner

let c = Alcotest.test_case
let check = Alcotest.check

let sa = Server.make "SA"
let sb = Server.make "SB"

let orders =
  Schema.make "COrders" ~key:[ "Oid" ]
    [ "Oid"; "Ocust"; "Oregion"; "Ototal" ]

let rates =
  Schema.make "CRates" ~key:[ "Rcust"; "Rregion" ]
    [ "Rcust"; "Rregion"; "Discount" ]

let catalog = Catalog.of_list [ (orders, sa); (rates, sb) ]

let attr name =
  Helpers.check_ok Catalog.pp_error (Catalog.resolve_attribute catalog name)

(* Join on BOTH customer and region. *)
let cond =
  Joinpath.Cond.make
    ~left:[ attr "Ocust"; attr "Oregion" ]
    ~right:[ attr "Rcust"; attr "Rregion" ]

let policy =
  Authz.Policy.of_list
    [
      Authz.Authorization.make_exn ~attrs:(Schema.attribute_set orders)
        ~path:Joinpath.empty sa;
      Authz.Authorization.make_exn ~attrs:(Schema.attribute_set rates)
        ~path:Joinpath.empty sb;
      (* SB may see the pair of join columns (semi-join slave view). *)
      Authz.Authorization.make_exn
        ~attrs:(Attribute.Set.of_list [ attr "Ocust"; attr "Oregion" ])
        ~path:Joinpath.empty sb;
      (* SA may read back the discounts of its own customer/region
         pairs — the semi-join master view. *)
      Authz.Authorization.make_exn
        ~attrs:
          (Attribute.Set.of_list
             [
               attr "Ocust"; attr "Oregion"; attr "Rcust"; attr "Rregion";
               attr "Discount";
             ])
        ~path:(Joinpath.singleton cond) sa;
    ]

let sql =
  "SELECT Ototal, Discount FROM COrders JOIN CRates ON Ocust = Rcust AND \
   Oregion = Rregion"

let plan () = Query.to_plan (Sql_parser.parse_exn catalog sql)

let v s = Value.String s

let instances =
  let table =
    [
      ( "COrders",
        Relation.of_rows orders
          [
            [ v "o1"; v "acme"; v "east"; v "100" ];
            [ v "o2"; v "acme"; v "west"; v "200" ];
            [ v "o3"; v "brix"; v "east"; v "300" ];
          ] );
      ( "CRates",
        Relation.of_rows rates
          [
            [ v "acme"; v "east"; v "d10" ];
            [ v "brix"; v "west"; v "d20" ];
          ] );
    ]
  in
  fun name -> List.assoc_opt name table

let test_parser_builds_composite () =
  let q = Sql_parser.parse_exn catalog sql in
  match q.Query.joins with
  | [ (_, parsed) ] ->
    check Helpers.join_cond "both pairs in one condition" cond parsed
  | _ -> Alcotest.fail "expected a single two-pair join"

let test_planned_as_semi_join () =
  match Safe_planner.plan catalog policy (plan ()) with
  | Error f -> Alcotest.failf "%a" Safe_planner.pp_failure f
  | Ok { assignment; _ } ->
    let top = Assignment.find assignment 1 in
    check Helpers.server "SA masters" sa top.Assignment.master;
    check Alcotest.bool "SB is the slave" true (top.Assignment.slave = Some sb);
    (* The forward leg carries exactly the two join columns. *)
    let flows =
      Helpers.check_ok Safety.pp_error
        (Safety.flows catalog (plan ()) assignment)
    in
    (match flows with
     | [ fwd; _back ] ->
       check Helpers.attribute_set "two join columns"
         (Attribute.Set.of_list [ attr "Ocust"; attr "Oregion" ])
         fwd.Safety.profile.Authz.Profile.pi
     | _ -> Alcotest.fail "expected two flows")

let test_execution () =
  match Safe_planner.plan catalog policy (plan ()) with
  | Error f -> Alcotest.failf "%a" Safe_planner.pp_failure f
  | Ok { assignment; _ } ->
    (match Distsim.Engine.execute catalog ~instances (plan ()) assignment with
     | Error e -> Alcotest.failf "%a" Distsim.Engine.pp_error e
     | Ok { result; network; _ } ->
       (* Only (acme, east) matches on BOTH columns. *)
       check Alcotest.int "one match" 1 (Relation.cardinality result);
       check Helpers.relation "matches centralized"
         (Distsim.Engine.centralized ~instances (plan ()))
         result;
       check Alcotest.bool "audit clean" true
         (Distsim.Audit.is_clean policy network);
       (* The semi-join back leg ships only the matching rate row. *)
       let back =
         List.find
           (fun (m : Distsim.Network.message) ->
             match m.purpose with
             | Distsim.Network.Semijoin_result _ -> true
             | _ -> false)
           (Distsim.Network.messages network)
       in
       check Alcotest.int "one reduced row" 1
         (Relation.cardinality back.Distsim.Network.data))

let test_single_column_match_would_differ () =
  (* Sanity of the fixture: joining on customer alone matches two rate
     rows — the composite condition is genuinely doing work. *)
  let loose = Joinpath.Cond.eq (attr "Ocust") (attr "Rcust") in
  let joined =
    Relation.equi_join loose
      (Option.get (instances "COrders"))
      (Option.get (instances "CRates"))
  in
  check Alcotest.int "three loose matches" 3 (Relation.cardinality joined)

let test_script () =
  match Safe_planner.plan catalog policy (plan ()) with
  | Error f -> Alcotest.failf "%a" Safe_planner.pp_failure f
  | Ok { assignment; _ } ->
    (match Script.of_assignment catalog (plan ()) assignment with
     | Error e -> Alcotest.failf "%a" Safety.pp_error e
     | Ok s ->
       let text = Fmt.str "%a" Script.pp s in
       check Alcotest.bool "both columns projected" true
         (Helpers.contains ~sub:"SELECT DISTINCT Ocust, Oregion" text);
       check Alcotest.bool "conjunctive ON" true
         (Helpers.contains ~sub:"Ocust = Rcust AND Oregion = Rregion" text))

let suite =
  [
    c "parser builds one composite condition" `Quick
      test_parser_builds_composite;
    c "planned as a semi-join on both columns" `Quick
      test_planned_as_semi_join;
    c "executes correctly" `Quick test_execution;
    c "fixture sanity: composite matters" `Quick
      test_single_column_match_would_differ;
    c "script shows the composite protocol" `Quick test_script;
  ]
