open Relalg
open Planner
module M = Scenario.Medical

let c = Alcotest.test_case
let check = Alcotest.check

let stats () = Stats.of_instances M.catalog M.instances

let test_cardinalities () =
  let s = stats () in
  check Alcotest.(option int) "Insurance" (Some 5)
    (Stats.cardinality s "Insurance");
  check Alcotest.(option int) "Nat_registry" (Some 8)
    (Stats.cardinality s "Nat_registry");
  check Alcotest.(option int) "unknown" None (Stats.cardinality s "Nope")

let test_distincts () =
  let s = stats () in
  (* Holder is a key: 5 distinct of 5 rows. *)
  check Alcotest.(option int) "Holder" (Some 5)
    (Stats.distinct s (M.attr "Holder"));
  (* Plan has 3 distinct values (gold, silver, basic). *)
  check Alcotest.(option int) "Plan" (Some 3) (Stats.distinct s (M.attr "Plan"));
  (* Physician: Kay, Lin, Moss. *)
  check Alcotest.(option int) "Physician" (Some 3)
    (Stats.distinct s (M.attr "Physician"));
  check Alcotest.(option int) "unseen" None
    (Stats.distinct s (Attribute.make ~relation:"Zzz" "A"))

let test_join_selectivity () =
  let s = stats () in
  let cond = Joinpath.Cond.eq (M.attr "Holder") (M.attr "Citizen") in
  (* distinct(Holder)=5, distinct(Citizen)=8 → 1/8. *)
  (match Stats.join_selectivity s cond with
   | Some sel -> check (Alcotest.float 1e-9) "1/8" 0.125 sel
   | None -> Alcotest.fail "no estimate");
  let unseen =
    Joinpath.Cond.eq (M.attr "Holder") (Attribute.make ~relation:"Z" "Q")
  in
  check Alcotest.bool "unseen side" true
    (Stats.join_selectivity s unseen = None)

let test_missing_instances_skipped () =
  let partial name = if name = "Insurance" then M.instances name else None in
  let s = Stats.of_instances M.catalog partial in
  check Alcotest.(option int) "present" (Some 5)
    (Stats.cardinality s "Insurance");
  check Alcotest.(option int) "absent" None (Stats.cardinality s "Hospital")

let test_cost_model () =
  let s = stats () in
  let conds = M.join_graph in
  let model = Stats.to_cost_model ~conds s in
  check (Alcotest.float 1e-9) "card from stats" 5.0 (model.Cost.card "Insurance");
  check (Alcotest.float 1e-9) "default for unseen" 1000.0
    (model.Cost.card "Nope");
  check Alcotest.bool "selectivity in range" true
    (model.Cost.join_selectivity >= 0.01
    && model.Cost.join_selectivity <= 1.0)

let test_model_drives_optimizer () =
  (* The stats-driven model plugs into the optimizer unchanged. *)
  let s = stats () in
  let model = Stats.to_cost_model ~conds:M.join_graph s in
  let t = Optimizer.optimize model M.catalog M.policy (M.example_query ()) in
  match t.Optimizer.best with
  | Some { outcome = Optimizer.Feasible (_, cost); _ } ->
    check Alcotest.bool "finite cost" true (cost < infinity)
  | _ -> Alcotest.fail "no feasible order"

let suite =
  [
    c "cardinalities" `Quick test_cardinalities;
    c "distinct counts" `Quick test_distincts;
    c "join selectivity estimate" `Quick test_join_selectivity;
    c "missing instances skipped" `Quick test_missing_instances_skipped;
    c "cost model construction" `Quick test_cost_model;
    c "stats model drives the optimizer" `Quick test_model_drives_optimizer;
  ]
