open Relalg
open Planner
module M = Scenario.Medical

let c = Alcotest.test_case
let check = Alcotest.check

let plan () = M.example_plan ()

let good_assignment () =
  match Safe_planner.plan M.catalog M.policy (plan ()) with
  | Ok r -> r.assignment
  | Error f -> Alcotest.failf "%a" Safe_planner.pp_failure f

let test_flows_of_paper_assignment () =
  let flows =
    Helpers.check_ok Safety.pp_error
      (Safety.flows M.catalog (plan ()) (good_assignment ()))
  in
  (* Exactly three transfers: Insurance to S_N (regular join n2), the
     Patient identifiers to S_N and the semi-join answer back to S_H
     (semi-join n1). *)
  check Alcotest.int "three flows" 3 (List.length flows);
  let summaries =
    List.map
      (fun (f : Safety.flow) ->
        (f.at, Server.name f.sender, Server.name f.receiver))
      flows
  in
  check
    Alcotest.(list (triple int string string))
    "flow endpoints"
    [ (2, "S_I", "S_N"); (1, "S_H", "S_N"); (1, "S_N", "S_H") ]
    summaries

let test_flow_profiles () =
  let flows =
    Helpers.check_ok Safety.pp_error
      (Safety.flows M.catalog (plan ()) (good_assignment ()))
  in
  let aset names = Attribute.Set.of_list (List.map M.attr names) in
  (match flows with
   | [ reg; fwd; back ] ->
     check Helpers.attribute_set "regular join ships Insurance"
       (aset [ "Holder"; "Plan" ])
       reg.Safety.profile.Authz.Profile.pi;
     check Helpers.attribute_set "semi-join forward ships Patient ids"
       (aset [ "Patient" ])
       fwd.Safety.profile.Authz.Profile.pi;
     check Helpers.attribute_set "semi-join answer"
       (aset [ "Patient"; "Holder"; "Plan"; "Citizen"; "HealthAid" ])
       back.Safety.profile.Authz.Profile.pi;
     (* The answer's path carries both joins of the query. *)
     check Alcotest.int "answer path length" 2
       (Joinpath.length back.Safety.profile.Authz.Profile.join)
   | _ -> Alcotest.fail "expected three flows")

let test_check_ok () =
  match Safety.check M.catalog M.policy (plan ()) (good_assignment ()) with
  | Ok flows -> check Alcotest.int "three flows" 3 (List.length flows)
  | Error _ -> Alcotest.fail "safe assignment rejected"

let test_unassigned_node () =
  match Safety.flows M.catalog (plan ()) Assignment.empty with
  | Error (Safety.Unassigned_node _) -> ()
  | _ -> Alcotest.fail "missing executor accepted"

let test_leaf_not_at_home () =
  let bad =
    Assignment.set 4 (Assignment.executor M.s_h) (good_assignment ())
  in
  match Safety.flows M.catalog (plan ()) bad with
  | Error (Safety.Leaf_not_at_home { node = 4; _ }) -> ()
  | _ -> Alcotest.fail "moved leaf accepted"

let test_unary_moved () =
  (* n3 (the pushed projection on Hospital) must stay at n6's server. *)
  let bad =
    Assignment.set 3 (Assignment.executor M.s_i) (good_assignment ())
  in
  match Safety.flows M.catalog (plan ()) bad with
  | Error (Safety.Unary_moved { node = 3; _ }) -> ()
  | _ -> Alcotest.fail "moved unary accepted"

let test_master_not_an_operand () =
  (* n2's master set to S_D, which executes neither child. *)
  let bad =
    Assignment.set 2 (Assignment.executor M.s_d) (good_assignment ())
  in
  (match Safety.flows M.catalog (plan ()) bad with
   | Error (Safety.Master_not_an_operand 2) -> ()
   | _ -> Alcotest.fail "outside master accepted");
  (* ... but allowed in third-party mode (the flows are both-full).
     n1's slave must follow n2's new executor for the rest of the plan
     to stay structurally valid. *)
  let proxied =
    Assignment.set 1 (Assignment.executor ~slave:M.s_d M.s_h) bad
  in
  match Safety.flows ~third_party:true M.catalog (plan ()) proxied with
  | Ok flows ->
    let n2_flows = List.filter (fun (f : Safety.flow) -> f.at = 2) flows in
    check Alcotest.int "proxy receives both operands" 2
      (List.length n2_flows)
  | Error e -> Alcotest.failf "third-party rejected: %a" Safety.pp_error e

let test_slave_not_other_operand () =
  (* n1's slave set to S_I which does not execute n2. *)
  let bad =
    Assignment.set 1
      (Assignment.executor ~slave:M.s_i M.s_h)
      (good_assignment ())
  in
  match Safety.flows M.catalog (plan ()) bad with
  | Error (Safety.Slave_not_other_operand 1) -> ()
  | _ -> Alcotest.fail "wrong slave accepted"

let test_violations_reported () =
  (* Regular join at S_I for the top join: S_I would see Nat_registry
     and Hospital data it has no authorization for. *)
  let bad =
    good_assignment ()
    |> Assignment.set 0 (Assignment.executor M.s_i)
    |> Assignment.set 1 (Assignment.executor M.s_i)
    |> Assignment.set 2 (Assignment.executor M.s_i)
    |> Assignment.set 5 (Assignment.executor M.s_n)
  in
  match Safety.check M.catalog M.policy (plan ()) bad with
  | Error (`Violations vs) ->
    check Alcotest.bool "at least one violation" true (List.length vs >= 1);
    List.iter
      (fun (v : Safety.violation) ->
        check Helpers.server "S_I is the receiver" M.s_i
          v.flow.Safety.receiver)
      vs
  | Ok _ -> Alcotest.fail "unsafe assignment accepted"
  | Error (`Structure e) -> Alcotest.failf "structure error: %a" Safety.pp_error e

let test_local_join_no_flows () =
  (* Supply chain customers query: n2/n4 at S_M... instead build a
     single-server plan: joining two relations stored at the same
     server moves nothing. *)
  let s = Server.make "Solo" in
  let r1 = Schema.make "L1" ~key:[ "A" ] [ "A"; "B" ] in
  let r2 = Schema.make "L2" ~key:[ "C" ] [ "C"; "D" ] in
  let catalog = Catalog.of_list [ (r1, s); (r2, s) ] in
  let cond =
    Joinpath.Cond.eq
      (Attribute.make ~relation:"L1" "A")
      (Attribute.make ~relation:"L2" "C")
  in
  let plan =
    Plan.of_algebra
      (Algebra.Join (cond, Algebra.Relation r1, Algebra.Relation r2))
  in
  let assignment =
    Assignment.empty
    |> Assignment.set 0 (Assignment.executor s)
    |> Assignment.set 1 (Assignment.executor s)
    |> Assignment.set 2 (Assignment.executor s)
  in
  let flows =
    Helpers.check_ok Safety.pp_error (Safety.flows catalog plan assignment)
  in
  check Alcotest.int "no flows" 0 (List.length flows);
  (* And it is safe under an empty policy — nothing is released. *)
  check Alcotest.bool "safe with no authorizations" true
    (Safety.is_safe catalog Authz.Policy.empty plan assignment)

let suite =
  [
    c "flows of the paper's assignment" `Quick test_flows_of_paper_assignment;
    c "flow profiles (Figure 5)" `Quick test_flow_profiles;
    c "check accepts the safe assignment" `Quick test_check_ok;
    c "unassigned node" `Quick test_unassigned_node;
    c "leaf must stay home" `Quick test_leaf_not_at_home;
    c "unary must stay with its operand" `Quick test_unary_moved;
    c "master must be an operand (unless third-party)" `Quick
      test_master_not_an_operand;
    c "slave must be the other operand" `Quick test_slave_not_other_operand;
    c "violations identify the receiver" `Quick test_violations_reported;
    c "co-located join entails no flow" `Quick test_local_join_no_flows;
  ]
