open Relalg
open Authz
module M = Scenario.Medical

let c = Alcotest.test_case
let check = Alcotest.check
let aset names = Attribute.Set.of_list (List.map M.attr names)

let test_single_relation_empty_path () =
  match
    Authorization.make ~attrs:(aset [ "Holder"; "Plan" ])
      ~path:Joinpath.empty M.s_i
  with
  | Ok a ->
    check Alcotest.(list string) "relations" [ "Insurance" ]
      (Authorization.relations a)
  | Error e -> Alcotest.failf "rejected: %a" Authorization.pp_error e

let test_multi_relation_requires_path () =
  match
    Authorization.make
      ~attrs:(aset [ "Holder"; "Patient" ])
      ~path:Joinpath.empty M.s_i
  with
  | Error (Authorization.Multiple_relations_without_path rels) ->
    check Alcotest.(list string) "both named" [ "Hospital"; "Insurance" ] rels
  | _ -> Alcotest.fail "accepted attributes spanning relations without a path"

let test_path_must_cover_attributes () =
  (* Path touches Insurance and Hospital, but HealthAid belongs to
     Nat_registry. *)
  match
    Authorization.make
      ~attrs:(aset [ "Holder"; "HealthAid" ])
      ~path:
        (Joinpath.singleton
           (Joinpath.Cond.eq (M.attr "Holder") (M.attr "Patient")))
      M.s_i
  with
  | Error (Authorization.Attributes_not_covered missing) ->
    check Helpers.attribute_set "HealthAid uncovered" (aset [ "HealthAid" ])
      missing
  | _ -> Alcotest.fail "uncovered attribute accepted"

let test_connectivity_constraint_allowed () =
  (* Authorization 3 of Figure 3: Hospital appears in the join path but
     releases no attribute (connectivity constraint). *)
  match
    Authorization.make
      ~attrs:(aset [ "Holder"; "Plan"; "Treatment" ])
      ~path:
        (Joinpath.of_list
           [
             Joinpath.Cond.eq (M.attr "Holder") (M.attr "Patient");
             Joinpath.Cond.eq (M.attr "Disease") (M.attr "Illness");
           ])
      M.s_i
  with
  | Ok a ->
    check Alcotest.(list string) "all three relations"
      [ "Disease_list"; "Hospital"; "Insurance" ]
      (Authorization.relations a)
  | Error e -> Alcotest.failf "rejected: %a" Authorization.pp_error e

let test_empty_attrs_rejected () =
  match
    Authorization.make ~attrs:Attribute.Set.empty ~path:Joinpath.empty M.s_i
  with
  | Error Authorization.Empty_attributes -> ()
  | _ -> Alcotest.fail "empty attribute set accepted"

let test_figure3_all_valid () =
  (* All fifteen rules of Figure 3 construct without error (they are
     built with make_exn in the scenario) and are distinct. *)
  check Alcotest.int "15 authorizations" 15 (List.length M.authorizations);
  let sorted = List.sort_uniq Authorization.compare M.authorizations in
  check Alcotest.int "all distinct" 15 (List.length sorted)

let test_ordering_groups_by_server () =
  let auths = List.sort Authorization.compare M.authorizations in
  let servers = List.map (fun a -> a.Authorization.server) auths in
  (* Sorted order groups rules of the same server together. *)
  let rec grouped seen = function
    | [] -> true
    | s :: rest ->
      if List.exists (Server.equal s) seen then
        (match rest with
         | [] -> true
         | next :: _ -> Server.equal next s || not (List.exists (Server.equal s) seen))
        && grouped seen rest
      else grouped (s :: seen) rest
  in
  ignore (grouped [] servers);
  (* Simpler check: number of "server change points" equals number of
     distinct servers - 1... at most. *)
  let changes =
    List.length
      (List.filteri
         (fun i s ->
           i > 0 && not (Server.equal s (List.nth servers (i - 1))))
         servers)
  in
  check Alcotest.bool "grouped" true (changes <= 3)

let test_pp_format () =
  let a =
    Authorization.make_exn ~attrs:(aset [ "Holder"; "Plan" ])
      ~path:Joinpath.empty M.s_i
  in
  check Alcotest.string "Figure 3 style" "[{Holder, Plan}, -] -> S_I"
    (Authorization.to_string a)

let suite =
  [
    c "single relation, empty path" `Quick test_single_relation_empty_path;
    c "multiple relations need a path" `Quick test_multi_relation_requires_path;
    c "path must cover attribute owners" `Quick test_path_must_cover_attributes;
    c "connectivity constraints allowed" `Quick
      test_connectivity_constraint_allowed;
    c "empty attributes rejected" `Quick test_empty_attrs_rejected;
    c "Figure 3 rules all valid and distinct" `Quick test_figure3_all_valid;
    c "ordering groups by server" `Quick test_ordering_groups_by_server;
    c "printing matches Figure 3" `Quick test_pp_format;
  ]
