open Relalg

let c = Alcotest.test_case
let check = Alcotest.check
let a r n = Attribute.make ~relation:r n
let holder = a "Insurance" "Holder"
let patient = a "Hospital" "Patient"
let citizen = a "Nat_registry" "Citizen"
let disease = a "Hospital" "Disease"
let illness = a "Disease_list" "Illness"

let test_orientation_insensitive () =
  (* Figure 3 spells the same join both ways (authorizations 2 and 5):
     ⟨Holder, Patient⟩ = ⟨Patient, Holder⟩. *)
  check Helpers.join_cond "flip equal"
    (Joinpath.Cond.eq holder patient)
    (Joinpath.Cond.eq patient holder)

let test_sides_preserved () =
  let cond = Joinpath.Cond.eq holder patient in
  check Alcotest.(list Helpers.attribute) "left" [ holder ]
    (Joinpath.Cond.left cond);
  check Alcotest.(list Helpers.attribute) "right" [ patient ]
    (Joinpath.Cond.right cond);
  let f = Joinpath.Cond.flip cond in
  check Alcotest.(list Helpers.attribute) "flipped left" [ patient ]
    (Joinpath.Cond.left f);
  check Helpers.join_cond "flip still equal" cond f

let test_multi_pair_order_insensitive () =
  let c1 =
    Joinpath.Cond.make ~left:[ holder; disease ] ~right:[ patient; illness ]
  in
  let c2 =
    Joinpath.Cond.make ~left:[ illness; holder ] ~right:[ disease; patient ]
  in
  check Helpers.join_cond "pair order + orientation" c1 c2

let test_cond_validation () =
  let fails f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  fails (fun () -> Joinpath.Cond.make ~left:[] ~right:[]);
  fails (fun () -> Joinpath.Cond.make ~left:[ holder ] ~right:[]);
  fails (fun () ->
      Joinpath.Cond.make ~left:[ holder; holder ] ~right:[ patient; patient ])

let test_path_equality () =
  let p1 =
    Joinpath.of_list
      [ Joinpath.Cond.eq holder patient; Joinpath.Cond.eq disease illness ]
  in
  let p2 =
    Joinpath.of_list
      [ Joinpath.Cond.eq illness disease; Joinpath.Cond.eq patient holder ]
  in
  check Helpers.joinpath "set equality mod orientation" p1 p2;
  check Alcotest.bool "different paths differ" false
    (Joinpath.equal p1 (Joinpath.singleton (Joinpath.Cond.eq holder patient)))

let test_subset () =
  let small = Joinpath.singleton (Joinpath.Cond.eq holder patient) in
  let big = Joinpath.add (Joinpath.Cond.eq disease illness) small in
  check Alcotest.bool "subset" true (Joinpath.subset small big);
  check Alcotest.bool "not superset" false (Joinpath.subset big small);
  (* Definition 3.3 requires equality, not containment: a bigger path
     is NOT implied. This test documents the asymmetry. *)
  check Alcotest.bool "equality is not containment" false
    (Joinpath.equal small big)

let test_union_dedups () =
  let p1 = Joinpath.singleton (Joinpath.Cond.eq holder patient) in
  let p2 = Joinpath.singleton (Joinpath.Cond.eq patient holder) in
  check Alcotest.int "same condition once" 1
    (Joinpath.length (Joinpath.union p1 p2))

let test_attributes_relations () =
  let p =
    Joinpath.of_list
      [ Joinpath.Cond.eq holder patient; Joinpath.Cond.eq patient citizen ]
  in
  check Alcotest.int "attributes" 3
    (Attribute.Set.cardinal (Joinpath.attributes p));
  check
    Alcotest.(list string)
    "relations" [ "Hospital"; "Insurance"; "Nat_registry" ]
    (Joinpath.relations p)

let test_empty_prints_dash () =
  check Alcotest.string "dash" "-" (Joinpath.to_string Joinpath.empty)

(* Property: condition equality is invariant under random flips. *)
let arb_cond =
  let attr_pool =
    [ holder; patient; citizen; disease; illness; a "X" "U"; a "Y" "V" ]
  in
  QCheck.(
    map
      (fun (i, j) ->
        (* Pick two distinct pool indices. *)
        let n = List.length attr_pool in
        let i = i mod n in
        let j = (i + 1 + (j mod (n - 1))) mod n in
        Joinpath.Cond.eq (List.nth attr_pool i) (List.nth attr_pool j))
      (pair small_nat small_nat))

let prop_flip_invariant =
  QCheck.Test.make ~name:"cond = flip cond" ~count:200 arb_cond (fun c ->
      Joinpath.Cond.equal c (Joinpath.Cond.flip c))

let prop_union_commutative =
  QCheck.Test.make ~name:"path union commutative" ~count:200
    QCheck.(pair (list_of_size Gen.(0 -- 4) arb_cond) (list_of_size Gen.(0 -- 4) arb_cond))
    (fun (l1, l2) ->
      let p1 = Joinpath.of_list l1 and p2 = Joinpath.of_list l2 in
      Joinpath.equal (Joinpath.union p1 p2) (Joinpath.union p2 p1))

let prop_union_idempotent =
  QCheck.Test.make ~name:"path union idempotent" ~count:200
    QCheck.(list_of_size Gen.(0 -- 5) arb_cond)
    (fun l ->
      let p = Joinpath.of_list l in
      Joinpath.equal p (Joinpath.union p p))

let suite =
  [
    c "orientation-insensitive equality" `Quick test_orientation_insensitive;
    c "sided lists preserved" `Quick test_sides_preserved;
    c "multi-pair canonicalisation" `Quick test_multi_pair_order_insensitive;
    c "condition validation" `Quick test_cond_validation;
    c "path equality" `Quick test_path_equality;
    c "subset vs equality (Def 3.3)" `Quick test_subset;
    c "union dedups flipped conditions" `Quick test_union_dedups;
    c "attributes and relations" `Quick test_attributes_relations;
    c "empty path prints '-'" `Quick test_empty_prints_dash;
    Helpers.qcheck prop_flip_invariant;
    Helpers.qcheck prop_union_commutative;
    Helpers.qcheck prop_union_idempotent;
  ]
