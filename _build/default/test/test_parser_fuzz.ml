(* Fuzzing the SQL parser: random byte soup must never raise, and
   generated queries must round-trip through print + parse. *)

open Relalg
open Workload
module M = Scenario.Medical

let c = Alcotest.test_case

let arb_garbage =
  QCheck.(string_gen_of_size Gen.(0 -- 200) Gen.printable)

let prop_no_crash_on_garbage =
  QCheck.Test.make ~name:"parser never raises on garbage" ~count:1000
    arb_garbage (fun s ->
      match Sql_parser.parse M.catalog s with
      | Ok _ | Error _ -> true)

let arb_sqlish =
  (* Strings biased towards SQL shape: keywords and medical attribute
     names glued with random separators. *)
  let words =
    [
      "SELECT"; "FROM"; "JOIN"; "ON"; "WHERE"; "AND"; "OR"; "NOT";
      "Holder"; "Plan"; "Patient"; "Disease"; "Insurance"; "Hospital";
      "="; "<"; ">="; "("; ")"; ","; "*"; "'gold'"; "42"; "NULL";
    ]
  in
  QCheck.(
    map
      (fun idxs ->
        String.concat " "
          (List.map (fun i -> List.nth words (i mod List.length words)) idxs))
      (list_of_size Gen.(0 -- 25) small_nat))

let prop_no_crash_on_sqlish =
  QCheck.Test.make ~name:"parser never raises on SQL-ish soup" ~count:1000
    arb_sqlish (fun s ->
      match Sql_parser.parse M.catalog s with
      | Ok _ | Error _ -> true)

(* Round-trip generated queries: print then parse yields the same
   query modulo representation. *)
let systems =
  lazy
    (List.map
       (fun seed ->
         System_gen.generate (Rng.make ~seed) ~relations:5 ~servers:3 ~extra:2
           ~topology:System_gen.Chain)
       [ 1; 2; 3 ])

let test_roundtrip_generated () =
  let rng = Rng.make ~seed:99 in
  List.iter
    (fun sys ->
      for _ = 1 to 30 do
        match
          Query_gen.generate rng ~where_prob:0.5 ~joins:3 sys
        with
        | None -> ()
        | Some q ->
          let sql = Query.to_string q in
          (match Sql_parser.parse sys.System_gen.catalog sql with
           | Error e ->
             Alcotest.failf "round-trip of %S failed: %a" sql
               Sql_parser.pp_error e
           | Ok q2 ->
             Alcotest.check
               Alcotest.(list string)
               "same relations" (Query.relations q) (Query.relations q2);
             Alcotest.check Helpers.joinpath "same join path"
               (Query.join_path q) (Query.join_path q2);
             Alcotest.check Helpers.attribute_set "same selection"
               (Attribute.Set.of_list q.Query.select)
               (Attribute.Set.of_list q2.Query.select);
             (* Identical plans (structure and numbering). *)
             let p1 = Query.to_plan q and p2 = Query.to_plan q2 in
             Alcotest.check Alcotest.int "same plan size" (Plan.size p1)
               (Plan.size p2))
      done)
    (Lazy.force systems)

let test_roundtrip_preserves_semantics () =
  (* Parse-print-parse queries and compare evaluation results. *)
  let rng = Rng.make ~seed:55 in
  List.iteri
    (fun i sys ->
      let instances =
        Data_gen.instances (Rng.make ~seed:(400 + i)) ~rows:15 sys
      in
      for _ = 1 to 10 do
        match Query_gen.generate rng ~where_prob:0.4 ~joins:2 sys with
        | None -> ()
        | Some q ->
          let q2 =
            Helpers.check_ok Sql_parser.pp_error
              (Sql_parser.parse sys.System_gen.catalog (Query.to_string q))
          in
          Alcotest.check Helpers.relation "same answer"
            (Distsim.Engine.centralized ~instances (Query.to_plan q))
            (Distsim.Engine.centralized ~instances (Query.to_plan q2))
      done)
    (Lazy.force systems)

let suite =
  [
    Helpers.qcheck prop_no_crash_on_garbage;
    Helpers.qcheck prop_no_crash_on_sqlish;
    c "generated queries round-trip" `Quick test_roundtrip_generated;
    c "round-trip preserves semantics" `Quick test_roundtrip_preserves_semantics;
  ]
