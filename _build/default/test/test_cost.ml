open Relalg
open Planner
module M = Scenario.Medical

let c = Alcotest.test_case
let check = Alcotest.check
let checkf = Alcotest.check (Alcotest.float 1e-6)

let model = Cost.uniform ~card:100.0

let test_node_rows () =
  let plan = M.example_plan () in
  let node id = Option.get (Plan.node plan id) in
  checkf "leaf" 100.0 (Cost.node_rows model (node 4));
  checkf "projection keeps rows" 100.0 (Cost.node_rows model (node 3));
  (* join selectivity 1.0: max of operands *)
  checkf "join" 100.0 (Cost.node_rows model (node 2));
  checkf "root" 100.0 (Cost.node_rows model (node 0))

let test_selection_shrinks () =
  let schema = Schema.make "T" ~key:[ "X" ] [ "X"; "Y" ] in
  let x = Attribute.make ~relation:"T" "X" in
  let plan =
    Plan.of_algebra
      (Algebra.Select
         (Predicate.Cmp (x, Predicate.Le, Const (Value.Int 1)),
          Algebra.Relation schema))
  in
  checkf "half survive" 50.0 (Cost.node_rows model (Plan.root plan))

let medical_assignment () =
  match Safe_planner.plan M.catalog M.policy (M.example_plan ()) with
  | Ok r -> r.assignment
  | Error f -> Alcotest.failf "%a" Safe_planner.pp_failure f

let test_flow_bytes () =
  let plan = M.example_plan () in
  let flows =
    Helpers.check_ok Safety.pp_error
      (Safety.flows M.catalog plan (medical_assignment ()))
  in
  match flows with
  | [ reg; fwd; back ] ->
    (* Regular join: 100 rows x 2 attrs x 8 bytes. *)
    checkf "full operand" 1600.0 (Cost.flow_bytes model plan reg);
    (* Forward semi-join leg: 100 rows x 1 attr x 8. *)
    checkf "join attributes" 800.0 (Cost.flow_bytes model plan fwd);
    (* Back leg: join cardinality (100) x 5 attrs x 8. *)
    checkf "semi-join answer" 4000.0 (Cost.flow_bytes model plan back)
  | _ -> Alcotest.fail "expected three flows"

let test_assignment_cost_total () =
  let plan = M.example_plan () in
  checkf "sum of flows" 6400.0
    (Cost.assignment_cost model M.catalog plan (medical_assignment ()))

let test_semijoin_beats_regular_when_selective () =
  (* With join selectivity < 1 the semi-join answer shrinks while the
     full-operand transfer does not: the semi-join execution of n1 must
     cost less than the all-regular alternative. *)
  let selective =
    {
      model with
      join_selectivity = 0.1;
      card = (function "Hospital" -> 10.0 | _ -> 1000.0);
    }
  in
  let plan = M.example_plan () in
  let semi = medical_assignment () in
  (* All-regular variant of the same structure, built by hand: n1 as a
     regular join at S_H (no authorization admits it — the medical
     example is regular-only infeasible — but the cost model only looks
     at the structure). *)
  let regular = Assignment.set 1 (Assignment.executor M.s_h) semi in
  let cost a = Cost.assignment_cost selective M.catalog plan a in
  check Alcotest.bool
    (Fmt.str "semi %.0f < regular %.0f" (cost semi) (cost regular))
    true
    (cost semi < cost regular)

let test_structural_error_is_infinite () =
  let plan = M.example_plan () in
  checkf "unusable assignment" infinity
    (Cost.assignment_cost model M.catalog plan Assignment.empty)

let suite =
  [
    c "node_rows" `Quick test_node_rows;
    c "selection selectivity" `Quick test_selection_shrinks;
    c "flow bytes per payload kind" `Quick test_flow_bytes;
    c "assignment cost totals the flows" `Quick test_assignment_cost_total;
    c "semi-join wins under selective joins" `Quick
      test_semijoin_beats_regular_when_selective;
    c "structural errors cost infinity" `Quick test_structural_error_is_infinite;
  ]
