open Relalg

let c = Alcotest.test_case
let check = Alcotest.check

let s1 = Server.make "S1"
let s2 = Server.make "S2"
let r = Schema.make "R" ~key:[ "K" ] [ "K"; "A" ]
let q = Schema.make "Q" ~key:[ "L" ] [ "L"; "B"; "A" ]
let catalog = Catalog.of_list [ (r, s1); (q, s2) ]

let test_add_duplicate () =
  match Catalog.add catalog r ~at:s1 with
  | Error (Catalog.Duplicate_relation "R") -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Catalog.pp_error e
  | Ok _ -> Alcotest.fail "duplicate accepted"

let test_relation_lookup () =
  check Helpers.schema "found" r (Helpers.check_ok Catalog.pp_error (Catalog.relation catalog "R"));
  match Catalog.relation catalog "Z" with
  | Error (Catalog.Unknown_relation "Z") -> ()
  | _ -> Alcotest.fail "expected Unknown_relation"

let test_server_of () =
  check Helpers.server "R at S1" s1
    (Helpers.check_ok Catalog.pp_error (Catalog.server_of catalog "R"));
  check Helpers.server "Q at S2" s2
    (Helpers.check_ok Catalog.pp_error (Catalog.server_of catalog "Q"));
  let a = Attribute.make ~relation:"Q" "B" in
  check Helpers.server "by attribute" s2
    (Helpers.check_ok Catalog.pp_error (Catalog.server_of_attribute catalog a))

let test_resolve_bare () =
  let got =
    Helpers.check_ok Catalog.pp_error (Catalog.resolve_attribute catalog "K")
  in
  check Helpers.attribute "unique bare name"
    (Attribute.make ~relation:"R" "K")
    got

let test_resolve_ambiguous () =
  (* "A" exists in both R and Q. *)
  match Catalog.resolve_attribute catalog "A" with
  | Error (Catalog.Ambiguous_attribute ("A", cands)) ->
    check Alcotest.int "two candidates" 2 (List.length cands)
  | _ -> Alcotest.fail "expected ambiguity"

let test_resolve_dotted () =
  let got =
    Helpers.check_ok Catalog.pp_error
      (Catalog.resolve_attribute catalog "Q.A")
  in
  check Helpers.attribute "dotted" (Attribute.make ~relation:"Q" "A") got;
  (match Catalog.resolve_attribute catalog "Q.Nope" with
   | Error (Catalog.Unknown_attribute _) -> ()
   | _ -> Alcotest.fail "expected unknown attribute");
  match Catalog.resolve_attribute catalog "Zzz.A" with
  | Error (Catalog.Unknown_relation "Zzz") -> ()
  | _ -> Alcotest.fail "expected unknown relation"

let test_resolve_unknown () =
  match Catalog.resolve_attribute catalog "Nope" with
  | Error (Catalog.Unknown_attribute "Nope") -> ()
  | _ -> Alcotest.fail "expected unknown attribute"

let test_servers_and_attributes () =
  check Alcotest.int "two servers" 2
    (Server.Set.cardinal (Catalog.servers catalog));
  check Alcotest.int "five attributes" 5
    (Attribute.Set.cardinal (Catalog.all_attributes catalog));
  check Alcotest.int "schemas in order" 2 (List.length (Catalog.schemas catalog))

let suite =
  [
    c "duplicate relation rejected" `Quick test_add_duplicate;
    c "relation lookup" `Quick test_relation_lookup;
    c "server_of" `Quick test_server_of;
    c "resolve unique bare name" `Quick test_resolve_bare;
    c "resolve ambiguous name" `Quick test_resolve_ambiguous;
    c "resolve dotted name" `Quick test_resolve_dotted;
    c "resolve unknown name" `Quick test_resolve_unknown;
    c "servers and attributes" `Quick test_servers_and_attributes;
  ]
