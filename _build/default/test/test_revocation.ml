open Relalg
open Planner
module M = Scenario.Medical

let c = Alcotest.test_case
let check = Alcotest.check

let nth_auth i = List.nth M.authorizations (i - 1)

let planned () =
  match Safe_planner.plan M.catalog M.policy (M.example_plan ()) with
  | Ok r -> r.Safe_planner.assignment
  | Error f -> Alcotest.failf "%a" Safe_planner.pp_failure f

let test_support_of_paper_assignment () =
  match Revocation.support M.catalog M.policy (M.example_plan ()) (planned ()) with
  | Error msg -> Alcotest.fail msg
  | Ok rules ->
    (* Three flows, three distinct admitting rules: 9 (S_N reads
       Insurance), 10 (S_N reads Patient ids), 7 (S_H reads the joined
       answer). *)
    check Alcotest.int "three rules" 3 (List.length rules);
    List.iter
      (fun i ->
        check Alcotest.bool
          (Fmt.str "authorization %d cited" i)
          true
          (List.exists (Authz.Authorization.equal (nth_auth i)) rules))
      [ 7; 9; 10 ]

let test_support_rejects_unsafe () =
  let bad =
    Assignment.set 1 (Assignment.executor M.s_i) (planned ())
  in
  match Revocation.support M.catalog M.policy (M.example_plan ()) bad with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unsafe assignment got a support set"

let test_load_bearing () =
  let rules = Revocation.load_bearing M.catalog M.policy (M.example_plan ()) in
  (* Authorization 9 is the only enabler of n2; 7 the only master view
     for n1; 10 the only slave view. Removing any one kills the plan. *)
  List.iter
    (fun i ->
      check Alcotest.bool
        (Fmt.str "authorization %d load-bearing" i)
        true
        (List.exists (Authz.Authorization.equal (nth_auth i)) rules))
    [ 7; 9; 10 ];
  (* Authorization 15 (S_D on Disease_list) is irrelevant here. *)
  check Alcotest.bool "authorization 15 not load-bearing" false
    (List.exists (Authz.Authorization.equal (nth_auth 15)) rules)

let test_load_bearing_empty_for_infeasible () =
  check
    Alcotest.(list Helpers.authorization)
    "no load-bearing rules for a blocked plan" []
    (Revocation.load_bearing Scenario.Supply_chain.catalog
       Scenario.Supply_chain.policy
       (Scenario.Supply_chain.pricing_plan ()))

let test_removing_load_bearing_breaks () =
  (* Definitional cross-check. *)
  let plan = M.example_plan () in
  List.iter
    (fun rule ->
      check Alcotest.bool "infeasible without it" false
        (Safe_planner.feasible M.catalog
           (Authz.Policy.remove rule M.policy)
           plan))
    (Revocation.load_bearing M.catalog M.policy plan)

let test_impact_over_workload () =
  let module SC = Scenario.Supply_chain in
  let plans = [ SC.tracking_plan (); SC.customers_plan () ] in
  let impacts = Revocation.impact SC.catalog SC.policy plans in
  (* Sorted by decreasing damage. *)
  let brokens = List.map (fun i -> i.Revocation.broken) impacts in
  check Alcotest.bool "sorted" true
    (List.sort (fun a b -> compare b a) brokens = brokens);
  (* Every rule's damage is within bounds. *)
  List.iter
    (fun (i : Revocation.impact) ->
      check Alcotest.bool "bounds" true (i.broken >= 0 && i.broken <= i.total))
    impacts;
  (* The tracking query's semi-join hinges on the {OrderId} grant to
     S_L: revoking it must break at least one plan. *)
  let order_id_grant =
    List.find
      (fun (a : Authz.Authorization.t) ->
        Server.equal a.server SC.s_l
        && Attribute.Set.equal a.attrs
             (Attribute.Set.singleton (SC.attr "OrderId")))
      (Authz.Policy.authorizations SC.policy)
  in
  let its_impact =
    List.find
      (fun (i : Revocation.impact) ->
        Authz.Authorization.equal i.rule order_id_grant)
      impacts
  in
  check Alcotest.bool "slave-view grant is load-bearing" true
    (its_impact.Revocation.broken >= 1)

let test_policy_remove () =
  let p = Authz.Policy.remove (nth_auth 9) M.policy in
  check Alcotest.int "one fewer rule" 14 (Authz.Policy.cardinality p);
  (* can_view reflects the removal (the index stays consistent). *)
  let profile =
    Authz.Profile.make
      ~pi:(Attribute.Set.of_list [ M.attr "Holder"; M.attr "Plan" ])
      ~join:Joinpath.empty ~sigma:Attribute.Set.empty
  in
  check Alcotest.bool "S_N view revoked" false
    (Authz.Policy.can_view p profile M.s_n);
  check Alcotest.bool "S_I view unaffected" true
    (Authz.Policy.can_view p profile M.s_i);
  (* Removing an absent rule is a no-op. *)
  check Alcotest.int "idempotent" 14
    (Authz.Policy.cardinality (Authz.Policy.remove (nth_auth 9) p))

let suite =
  [
    c "support set of the paper's assignment" `Quick
      test_support_of_paper_assignment;
    c "support rejects unsafe assignments" `Quick test_support_rejects_unsafe;
    c "load-bearing rules of the example" `Quick test_load_bearing;
    c "infeasible plans have no load-bearing rules" `Quick
      test_load_bearing_empty_for_infeasible;
    c "removing a load-bearing rule breaks the plan" `Quick
      test_removing_load_bearing_breaks;
    c "impact over a workload" `Quick test_impact_over_workload;
    c "Policy.remove keeps the index consistent" `Quick test_policy_remove;
  ]
