  $ cisqp repro fig3
  $ cisqp plan -s medical "SELECT Patient, Physician, Plan, HealthAid FROM Insurance JOIN Nat_registry ON Holder=Citizen JOIN Hospital ON Citizen=Patient"
  $ cisqp plan -s medical --script "SELECT Patient, Physician, Plan, HealthAid FROM Insurance JOIN Nat_registry ON Holder=Citizen JOIN Hospital ON Citizen=Patient"
  $ cisqp advise -s supply-chain "SELECT OrderId, Customer, Price FROM Orders JOIN Parts ON Part=PartNo"
  $ cisqp run -s research --third-party "SELECT Cohort, Outcome FROM Participants JOIN Visits ON Pid = Subject" | tail -6
