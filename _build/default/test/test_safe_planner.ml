open Relalg
open Planner
module M = Scenario.Medical
module SC = Scenario.Supply_chain

let c = Alcotest.test_case
let check = Alcotest.check

let plan_medical () =
  match Safe_planner.plan M.catalog M.policy (M.example_plan ()) with
  | Ok r -> r
  | Error f -> Alcotest.failf "%a" Safe_planner.pp_failure f

(* ------------------------------------------------------------------ *)
(* Figure 7, left table: Find_candidates visit order and candidates.   *)

let candidate_summary (i : Safe_planner.node_info) =
  ( i.node,
    List.map
      (fun (cand : Safe_planner.candidate) ->
        ( Server.name cand.server,
          (match cand.fromchild with
           | None -> "-"
           | Some Safe_planner.Left -> "left"
           | Some Safe_planner.Right -> "right"),
          cand.count ))
      i.candidates )

let test_fig7_find_candidates () =
  let { Safe_planner.trace; _ } = plan_medical () in
  let got = List.map candidate_summary trace.visit_order in
  check
    Alcotest.(list (pair int (list (triple string string int))))
    "Figure 7 candidates"
    [
      (4, [ ("S_I", "-", 0) ]);
      (5, [ ("S_N", "-", 0) ]);
      (2, [ ("S_N", "right", 1) ]);
      (6, [ ("S_H", "-", 0) ]);
      (3, [ ("S_H", "left", 0) ]);
      (1, [ ("S_H", "right", 1) ]);
      (0, [ ("S_H", "left", 1) ]);
    ]
    got

let test_fig7_slave_at_n1 () =
  let { Safe_planner.trace; _ } = plan_medical () in
  let n1 = List.find (fun i -> i.Safe_planner.node = 1) trace.visit_order in
  (match n1.Safe_planner.leftslave with
   | Some cand -> check Helpers.server "left slave S_N" M.s_n cand.server
   | None -> Alcotest.fail "no left slave at n1");
  (* Its single candidate executes as a semi-join. *)
  match n1.Safe_planner.candidates with
  | [ cand ] ->
    check Alcotest.bool "semi mode" true (cand.mode = Safe_planner.Semi)
  | _ -> Alcotest.fail "expected one candidate at n1"

let test_fig7_n2_regular () =
  let { Safe_planner.trace; _ } = plan_medical () in
  let n2 = List.find (fun i -> i.Safe_planner.node = 2) trace.visit_order in
  match n2.Safe_planner.candidates with
  | [ cand ] ->
    check Alcotest.bool "regular mode" true (cand.mode = Safe_planner.Regular)
  | _ -> Alcotest.fail "expected one candidate at n2"

(* Figure 7, right table: the executor assignment. *)
let test_fig7_assignment () =
  let { Safe_planner.assignment; _ } = plan_medical () in
  let exec id = Assignment.find assignment id in
  let e master slave =
    Assignment.executor ?slave (Server.make master)
  in
  check Helpers.executor "n0 [S_H, NULL]" (e "S_H" None) (exec 0);
  check Helpers.executor "n1 [S_H, S_N]" (e "S_H" (Some M.s_n)) (exec 1);
  check Helpers.executor "n2 [S_N, NULL]" (e "S_N" None) (exec 2);
  check Helpers.executor "n3 [S_H, NULL]" (e "S_H" None) (exec 3);
  check Helpers.executor "n4 [S_I, NULL]" (e "S_I" None) (exec 4);
  check Helpers.executor "n5 [S_N, NULL]" (e "S_N" None) (exec 5);
  check Helpers.executor "n6 [S_H, NULL]" (e "S_H" None) (exec 6)

let test_fig7_assign_order () =
  (* Pre-order with the left subtree of n1 visited before n3. *)
  let { Safe_planner.trace; _ } = plan_medical () in
  check
    Alcotest.(list int)
    "assign order" [ 0; 1; 2; 4; 5; 3; 6 ]
    (List.map fst trace.assign_order)

let test_planned_assignment_is_safe () =
  let { Safe_planner.assignment; _ } = plan_medical () in
  check Alcotest.bool "Definition 4.2" true
    (Safety.is_safe M.catalog M.policy (M.example_plan ()) assignment)

(* ------------------------------------------------------------------ *)
(* Infeasibility and config baselines.                                 *)

let test_infeasible_without_s_n_grants () =
  (* Remove S_N's rules 9-14: n2 loses its only candidate. *)
  let reduced =
    Authz.Policy.of_list
      (List.filter
         (fun (a : Authz.Authorization.t) ->
           (not (Server.equal a.server M.s_n))
           || Attribute.Set.equal a.attrs
                (Schema.attribute_set M.nat_registry))
         M.authorizations)
  in
  match Safe_planner.plan M.catalog reduced (M.example_plan ()) with
  | Ok _ -> Alcotest.fail "expected infeasible"
  | Error f ->
    check Alcotest.int "fails at n2" 2 f.failed_at;
    (* The partial trace contains the leaves visited before the
       failure. *)
    check Alcotest.bool "partial trace" true
      (List.length f.info >= 2)

let test_medical_infeasible_without_semijoins () =
  (* The paper's own example NEEDS the semi-join: no server may receive
     either operand of n1 in full (S_H's authorization 7 has the
     three-relation path, not n2's two-relation one; S_N's
     authorization 10 lacks Physician), so the regular-join-only
     baseline fails — semi-joins are not just cheaper, they enlarge the
     feasible set. *)
  let config =
    { Safe_planner.allow_semijoins = false; allow_regular = true;
      prefer_high_count = true }
  in
  check Alcotest.bool "regular-only infeasible" false
    (Safe_planner.feasible ~config M.catalog M.policy (M.example_plan ()))

let test_tracking_needs_semijoins () =
  let config =
    { Safe_planner.allow_semijoins = false; allow_regular = true;
      prefer_high_count = true }
  in
  check Alcotest.bool "semi-join only query" false
    (Safe_planner.feasible ~config SC.catalog SC.policy (SC.tracking_plan ()));
  check Alcotest.bool "feasible with semi-joins" true
    (Safe_planner.feasible SC.catalog SC.policy (SC.tracking_plan ()))

let test_semijoin_only_config () =
  (* With regular joins disabled the medical plan still works: n2 can
     run as a semi-join too?  n2's only mode is regular (S_N receives
     Insurance in full), so the plan must become infeasible. *)
  let config =
    { Safe_planner.allow_semijoins = true; allow_regular = false;
      prefer_high_count = true }
  in
  check Alcotest.bool "n2 needs a regular join" false
    (Safe_planner.feasible ~config M.catalog M.policy (M.example_plan ()))

let test_helpers_parameter () =
  match
    Safe_planner.plan ~helpers:[ SC.s_b ] SC.catalog SC.policy
      (SC.pricing_plan ())
  with
  | Ok { assignment; _ } ->
    let root_join = Assignment.find assignment 1 in
    check Helpers.server "broker masters the join" SC.s_b
      root_join.Assignment.master;
    check Alcotest.bool "safe under third-party rules" true
      (Safety.is_safe ~third_party:true SC.catalog SC.policy
         (SC.pricing_plan ()) assignment)
  | Error f -> Alcotest.failf "not rescued: %a" Safe_planner.pp_failure f

let test_trace_printing () =
  let { Safe_planner.trace; _ } = plan_medical () in
  let s = Fmt.str "%a" Safe_planner.pp_trace trace in
  List.iter
    (fun fragment ->
      check Alcotest.bool fragment true (Helpers.contains ~sub:fragment s))
    [ "[S_I, -, 0]"; "[S_H, right, 1, semi] S_N"; "[S_H, S_N]" ]

let suite =
  [
    c "Figure 7: Find_candidates table" `Quick test_fig7_find_candidates;
    c "Figure 7: slave at n1" `Quick test_fig7_slave_at_n1;
    c "Figure 7: n2 is a regular join" `Quick test_fig7_n2_regular;
    c "Figure 7: Assign_ex executors" `Quick test_fig7_assignment;
    c "Figure 7: Assign_ex order" `Quick test_fig7_assign_order;
    c "planned assignment is safe (Def 4.2)" `Quick
      test_planned_assignment_is_safe;
    c "infeasibility reported at the right node" `Quick
      test_infeasible_without_s_n_grants;
    c "medical infeasible regular-only" `Quick
      test_medical_infeasible_without_semijoins;
    c "tracking query needs semi-joins" `Quick test_tracking_needs_semijoins;
    c "semijoin-only config" `Quick test_semijoin_only_config;
    c "third-party helpers" `Quick test_helpers_parameter;
    c "trace rendering" `Quick test_trace_printing;
  ]
