(* The Local candidate mode: a server that can execute both operands
   joins them without any release (see DESIGN.md, "Local joins"). *)

open Relalg
open Planner

let c = Alcotest.test_case
let check = Alcotest.check

(* Two relations stored at ONE server, a third elsewhere. Base grants
   only: nothing may cross a boundary, yet A ⋈ B is executable at SA.
   The paper's literal pseudo-code would reject even that. *)
let sa = Server.make "SA"
let sc = Server.make "SC"
let a = Schema.make "LA" ~key:[ "Ax" ] [ "Ax"; "Adata" ]
let b = Schema.make "LB" ~key:[ "Bx" ] [ "Bx"; "Bdata" ]
let cc = Schema.make "LC" ~key:[ "Cx" ] [ "Cx"; "Cdata" ]
let catalog = Catalog.of_list [ (a, sa); (b, sa); (cc, sc) ]

let attr name =
  Helpers.check_ok Catalog.pp_error (Catalog.resolve_attribute catalog name)

let base_grants =
  Authz.Policy.of_list
    [
      Authz.Authorization.make_exn ~attrs:(Schema.attribute_set a)
        ~path:Joinpath.empty sa;
      Authz.Authorization.make_exn ~attrs:(Schema.attribute_set b)
        ~path:Joinpath.empty sa;
      Authz.Authorization.make_exn ~attrs:(Schema.attribute_set cc)
        ~path:Joinpath.empty sc;
    ]

let two_way_plan () =
  Query.to_plan
    (Sql_parser.parse_exn catalog
       "SELECT Adata, Bdata FROM LA JOIN LB ON Ax = Bx")

let test_colocated_join_feasible () =
  match Safe_planner.plan catalog base_grants (two_way_plan ()) with
  | Error f -> Alcotest.failf "%a" Safe_planner.pp_failure f
  | Ok { assignment; trace } ->
    let top = Assignment.find assignment 1 in
    check Helpers.server "at SA" sa top.Assignment.master;
    check Alcotest.bool "no slave" true (top.Assignment.slave = None);
    (* The winning candidate is marked local in the trace. *)
    let n1 =
      List.find
        (fun (i : Safe_planner.node_info) -> i.node = 1)
        trace.visit_order
    in
    check Alcotest.bool "local mode" true
      (List.exists
         (fun (cand : Safe_planner.candidate) ->
           cand.mode = Safe_planner.Local)
         n1.candidates);
    (* Zero flows, trivially safe under base grants. *)
    let flows =
      Helpers.check_ok Safety.pp_error
        (Safety.flows catalog (two_way_plan ()) assignment)
    in
    check Alcotest.int "no flows" 0 (List.length flows)

let test_colocated_execution () =
  let v s = Value.String s in
  let instances =
    let table =
      [
        ("LA", Relation.of_rows a [ [ v "k1"; v "a1" ]; [ v "k2"; v "a2" ] ]);
        ("LB", Relation.of_rows b [ [ v "k1"; v "b1" ] ]);
        ("LC", Relation.of_rows cc [ [ v "k1"; v "c1" ] ]);
      ]
    in
    fun name -> List.assoc_opt name table
  in
  match Safe_planner.plan catalog base_grants (two_way_plan ()) with
  | Error f -> Alcotest.failf "%a" Safe_planner.pp_failure f
  | Ok { assignment; _ } ->
    (match
       Distsim.Engine.execute catalog ~instances (two_way_plan ()) assignment
     with
     | Error e -> Alcotest.failf "%a" Distsim.Engine.pp_error e
     | Ok { result; network; _ } ->
       check Alcotest.int "one row" 1 (Relation.cardinality result);
       check Alcotest.int "zero messages" 0
         (Distsim.Network.message_count network))

let test_local_count_propagates () =
  (* Above the co-located join, SA carries both children's counters:
     it remains the preferred master upstream. With a grant letting SA
     view LC in full, the three-way query runs entirely at SA plus one
     transfer from SC. *)
  let policy =
    Authz.Policy.add
      (Authz.Authorization.make_exn ~attrs:(Schema.attribute_set cc)
         ~path:Joinpath.empty sa)
      base_grants
  in
  let plan =
    Query.to_plan
      (Sql_parser.parse_exn catalog
         "SELECT Adata, Bdata, Cdata FROM LA JOIN LB ON Ax = Bx JOIN LC ON \
          Bx = Cx")
  in
  match Safe_planner.plan catalog policy plan with
  | Error f -> Alcotest.failf "%a" Safe_planner.pp_failure f
  | Ok { assignment; _ } ->
    List.iter
      (fun id ->
        check Helpers.server
          (Printf.sprintf "n%d at SA" id)
          sa
          (Assignment.find assignment id).Assignment.master)
      [ 0; 1 ];
    let flows =
      Helpers.check_ok Safety.pp_error (Safety.flows catalog plan assignment)
    in
    check Alcotest.int "one flow (LC ships)" 1 (List.length flows)

let test_medical_trace_unchanged () =
  (* The correction must not disturb the Figure-7 reproduction: the
     medical operands never co-locate. *)
  let module M = Scenario.Medical in
  match Safe_planner.plan M.catalog M.policy (M.example_plan ()) with
  | Error f -> Alcotest.failf "%a" Safe_planner.pp_failure f
  | Ok { trace; _ } ->
    List.iter
      (fun (i : Safe_planner.node_info) ->
        List.iter
          (fun (cand : Safe_planner.candidate) ->
            check Alcotest.bool "no local candidates" true
              (cand.mode <> Safe_planner.Local))
          i.candidates)
      trace.visit_order

let suite =
  [
    c "co-located join feasible under base grants" `Quick
      test_colocated_join_feasible;
    c "co-located execution moves nothing" `Quick test_colocated_execution;
    c "local counters propagate upstream" `Quick test_local_count_propagates;
    c "Figure 7 unaffected" `Quick test_medical_trace_unchanged;
  ]
