open Planner
module M = Scenario.Medical

let c = Alcotest.test_case
let check = Alcotest.check
let contains = Helpers.contains

let test_plan_dot () =
  let s = Dot.plan_to_dot (M.example_plan ()) in
  List.iter
    (fun sub -> check Alcotest.bool sub true (contains ~sub s))
    [
      "digraph plan";
      "n6 [label=\"n6\\nHospital\", shape=box]";
      "n1";
      "shape=diamond";
      "n4 -> n2;";
      "n1 -> n0;";
      "}";
    ]

let test_assignment_dot () =
  let plan = M.example_plan () in
  let assignment =
    match Safe_planner.plan M.catalog M.policy plan with
    | Ok r -> r.Safe_planner.assignment
    | Error f -> Alcotest.failf "%a" Safe_planner.pp_failure f
  in
  let s = Dot.assignment_to_dot M.catalog plan assignment in
  List.iter
    (fun sub -> check Alcotest.bool sub true (contains ~sub s))
    [
      "digraph assignment";
      (* one cluster per involved server *)
      "label=\"S_H\"";
      "label=\"S_I\"";
      "label=\"S_N\"";
      (* three dashed flow edges *)
      "style=dashed";
      "S_I→S_N";
      "S_N→S_H";
    ];
  (* Exactly three flow edges. *)
  let count sub s =
    let rec go i acc =
      if i + String.length sub > String.length s then acc
      else if String.sub s i (String.length sub) = sub then
        go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  check Alcotest.int "three flows" 3 (count "style=dashed" s)

let test_assignment_dot_rejects_invalid () =
  match
    Dot.assignment_to_dot M.catalog (M.example_plan ()) Assignment.empty
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "invalid assignment rendered"

let test_escaping () =
  (* Quotes in predicates must be escaped. *)
  let schema = Relalg.Schema.make "T" ~key:[ "X" ] [ "X" ] in
  let x = Relalg.Attribute.make ~relation:"T" "X" in
  let plan =
    Relalg.Plan.of_algebra
      (Relalg.Algebra.Select
         ( Relalg.Predicate.Cmp
             (x, Eq, Const (Relalg.Value.String "a\"b")),
           Relalg.Algebra.Relation schema ))
  in
  let s = Dot.plan_to_dot plan in
  check Alcotest.bool "escaped quote" true (contains ~sub:"\\\"" s)

let suite =
  [
    c "plan rendering" `Quick test_plan_dot;
    c "assignment rendering with flows" `Quick test_assignment_dot;
    c "invalid assignments rejected" `Quick test_assignment_dot_rejects_invalid;
    c "label escaping" `Quick test_escaping;
  ]
