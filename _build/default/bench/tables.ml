(* Quantitative experiment tables (EXP-B .. EXP-F of DESIGN.md).

   The paper itself reports no measurements, so these tables are the
   synthetic evaluation an extended version would contain; each checks
   one of the paper's qualitative claims. *)

open Relalg
open Workload

let line = String.make 72 '-'

let header title =
  Fmt.pr "@.%s@.%s@.%s@." line title line

(* ------------------------------------------------------------------ *)
(* EXP-B: feasibility vs authorization density.                        *)

let feasibility_density ~seeds =
  header
    "EXP-B  Feasibility vs authorization density (chain of 6, 3-join \
     queries)";
  Fmt.pr "%-10s %-12s %-12s %-14s@." "density" "feasible" "infeasible"
    "feasibility";
  List.iter
    (fun density ->
      let feasible = ref 0 and total = ref 0 in
      for seed = 1 to seeds do
        let rng = Rng.make ~seed in
        let sys =
          System_gen.generate rng ~relations:6 ~servers:6 ~extra:2
            ~topology:System_gen.Chain
        in
        let policy = Authz_gen.generate rng ~density sys in
        match Query_gen.generate_plan rng ~joins:3 sys with
        | None -> ()
        | Some plan ->
          incr total;
          if Planner.Safe_planner.feasible sys.catalog policy plan then
            incr feasible
      done;
      Fmt.pr "%-10.2f %-12d %-12d %-14.3f@." density !feasible
        (!total - !feasible)
        (float_of_int !feasible /. float_of_int (max 1 !total)))
    [ 0.0; 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9; 1.0 ]

(* ------------------------------------------------------------------ *)
(* EXP-C: measured communication, semi-join vs regular join.           *)

(* A two-server, single-join fixture shared by EXP-C and EXP-H: the
   same plan with a regular-join assignment and a semi-join one. *)
let single_join_fixture () =
  let rng = Rng.make ~seed:77 in
  let sys =
    System_gen.generate rng ~relations:2 ~servers:2 ~extra:2
      ~topology:System_gen.Chain
  in
  let plan =
    match Query_gen.generate_plan (Rng.make ~seed:1) ~joins:1 sys with
    | Some p -> p
    | None -> assert false
  in
  (* Executors: leaves are fixed; the join runs at the server of the
     left subtree either as a regular join or as a semi-join. *)
  let leaf_assignment =
    List.fold_left
      (fun acc (n : Plan.node) ->
        match n.op with
        | Plan.Leaf schema ->
          let s =
            match Catalog.server_of sys.catalog (Schema.name schema) with
            | Ok s -> s
            | Error _ -> assert false
          in
          Planner.Assignment.set n.id (Planner.Assignment.executor s) acc
        | _ -> acc)
      Planner.Assignment.empty (Plan.nodes plan)
  in
  (* Walk up: unary nodes inherit; find the join node and both leaf
     servers. *)
  let rec executor_of (n : Plan.node) assignment =
    match Planner.Assignment.find_opt assignment n.id with
    | Some e -> (e.Planner.Assignment.master, assignment)
    | None ->
      (match n.op with
       | Plan.Leaf _ -> assert false
       | Plan.Project (_, c) | Plan.Select (_, c) ->
         let s, assignment = executor_of c assignment in
         (s, Planner.Assignment.set n.id (Planner.Assignment.executor s) assignment)
       | Plan.Join (_, l, r) ->
         let sl, assignment = executor_of l assignment in
         let _, assignment = executor_of r assignment in
         (sl, Planner.Assignment.set n.id (Planner.Assignment.executor sl) assignment))
  in
  let _, regular_assignment = executor_of (Plan.root plan) leaf_assignment in
  let semi_assignment =
    (* Same masters, but the join node declares the other operand's
       server as slave. *)
    List.fold_left
      (fun acc (n : Plan.node) ->
        match n.op with
        | Plan.Join (_, l, r) ->
          let master =
            (Planner.Assignment.find regular_assignment n.id)
              .Planner.Assignment.master
          in
          let l_s =
            (Planner.Assignment.find regular_assignment l.Plan.id)
              .Planner.Assignment.master
          in
          let r_s =
            (Planner.Assignment.find regular_assignment r.Plan.id)
              .Planner.Assignment.master
          in
          let slave = if Server.equal master l_s then r_s else l_s in
          Planner.Assignment.set n.id
            (Planner.Assignment.executor ~slave master)
            acc
        | _ -> acc)
      regular_assignment (Plan.nodes plan)
  in
  (sys, plan, regular_assignment, semi_assignment)

let comm_cost () =
  header
    "EXP-C  Measured communication (bytes on the wire), semi-join vs \
     regular join";
  Fmt.pr
    "Single join R0 \xe2\x8b\x88 R1, 1000 rows each, linkage fraction = \
     P(link value has a matching key)@.";
  Fmt.pr "%-18s %-16s %-16s %-10s@." "linkage fraction" "regular (bytes)"
    "semi-join (bytes)" "ratio";
  let sys, plan, regular_assignment, semi_assignment = single_join_fixture () in
  List.iter
    (fun scale ->
      let instances =
        Data_gen.instances (Rng.make ~seed:5) ~rows:1000 ~domain_scale:scale
          sys
      in
      let bytes assignment =
        match Distsim.Engine.execute sys.catalog ~instances plan assignment with
        | Ok { network; _ } -> Distsim.Network.total_bytes network
        | Error e -> Fmt.failwith "%a" Distsim.Engine.pp_error e
      in
      let reg = bytes regular_assignment in
      let semi = bytes semi_assignment in
      Fmt.pr "%-18.2f %-16d %-16d %-10.2f@." (1.0 /. scale) reg semi
        (float_of_int reg /. float_of_int (max 1 semi)))
    [ 1.0; 2.0; 5.0; 10.0; 20.0 ]

(* Medical example, as reported by the paper's own assignment. *)
let comm_cost_medical () =
  header "EXP-C' Paper example: wire traffic of the planned execution";
  let module M = Scenario.Medical in
  let plan = M.example_plan () in
  match Planner.Safe_planner.plan M.catalog M.policy plan with
  | Error f -> Fmt.pr "unexpected: %a@." Planner.Safe_planner.pp_failure f
  | Ok { assignment; _ } ->
    (match Distsim.Engine.execute M.catalog ~instances:M.instances plan assignment with
     | Error e -> Fmt.pr "unexpected: %a@." Distsim.Engine.pp_error e
     | Ok { network; _ } ->
       Fmt.pr "%a@." Distsim.Network.pp network;
       Fmt.pr "total: %d messages, %d tuples, %d bytes@."
         (Distsim.Network.message_count network)
         (Distsim.Network.total_tuples network)
         (Distsim.Network.total_bytes network))

(* ------------------------------------------------------------------ *)
(* EXP-D: greedy vs exhaustive.                                        *)

let greedy_vs_exhaustive ~seeds =
  header "EXP-D  Greedy (Figure 6) vs exhaustive enumeration";
  let agree_feasible = ref 0
  and agree_infeasible = ref 0
  and disagreements = ref 0
  and cost_ratios = ref [] in
  let model = Planner.Cost.uniform ~card:1000.0 in
  let model = { model with join_selectivity = 0.3 } in
  for seed = 1 to seeds do
    let rng = Rng.make ~seed in
    let sys =
      System_gen.generate rng ~relations:5 ~servers:5 ~extra:2
        ~topology:System_gen.Chain
    in
    let policy = Authz_gen.generate rng ~density:0.5 sys in
    match Query_gen.generate_plan rng ~joins:3 sys with
    | None -> ()
    | Some plan ->
      let greedy = Planner.Safe_planner.plan sys.catalog policy plan in
      let exhaustive = Planner.Exhaustive.min_cost model sys.catalog policy plan in
      (match greedy, exhaustive with
       | Ok { assignment; _ }, Some (_, best) ->
         incr agree_feasible;
         let g = Planner.Cost.assignment_cost model sys.catalog plan assignment in
         cost_ratios := (g /. best) :: !cost_ratios
       | Error _, None -> incr agree_infeasible
       | _ -> incr disagreements)
  done;
  let ratios = !cost_ratios in
  let mean =
    List.fold_left ( +. ) 0.0 ratios /. float_of_int (max 1 (List.length ratios))
  in
  let worst = List.fold_left Float.max 1.0 ratios in
  Fmt.pr "both feasible:            %d@." !agree_feasible;
  Fmt.pr "both infeasible:          %d@." !agree_infeasible;
  Fmt.pr "feasibility disagreement: %d  (0 expected)@." !disagreements;
  Fmt.pr "greedy/optimal cost:      mean %.3f, worst %.3f@." mean worst

(* ------------------------------------------------------------------ *)
(* EXP-E: third-party rescue rate.                                     *)

let third_party_rescue ~seeds =
  header "EXP-E  Third-party rescue rate (footnote 3)";
  Fmt.pr "%-10s %-12s %-12s %-12s %-14s@." "density" "feasible" "rescued"
    "unrescued" "rescue rate";
  List.iter
    (fun density ->
      let feasible = ref 0 and rescued = ref 0 and unrescued = ref 0 in
      for seed = 1 to seeds do
        let rng = Rng.make ~seed in
        let sys =
          System_gen.generate rng ~relations:5 ~servers:5 ~extra:2
            ~topology:System_gen.Chain
        in
        let policy = Authz_gen.generate rng ~density sys in
        (* The helper is an outside auditor granted every subtree view
           in full. *)
        let helper = Server.make "T" in
        let policy =
          List.fold_left
            (fun p (rels, conds) ->
              let path = Joinpath.of_list conds in
              let attrs =
                List.fold_left
                  (fun acc rel ->
                    match Catalog.relation sys.catalog rel with
                    | Ok s -> Attribute.Set.union acc (Schema.attribute_set s)
                    | Error _ -> acc)
                  Attribute.Set.empty rels
              in
              match Authz.Authorization.make ~attrs ~path helper with
              | Ok a -> Authz.Policy.add a p
              | Error _ -> p)
            policy
            (Authz_gen.connected_subtrees sys ~max_edges:3)
        in
        match Query_gen.generate_plan rng ~joins:3 sys with
        | None -> ()
        | Some plan ->
          if Planner.Safe_planner.feasible sys.catalog policy plan then
            incr feasible
          else if
            Planner.Safe_planner.feasible ~helpers:[ helper ] sys.catalog
              policy plan
          then incr rescued
          else incr unrescued
      done;
      let blocked = !rescued + !unrescued in
      Fmt.pr "%-10.2f %-12d %-12d %-12d %-14.3f@." density !feasible !rescued
        !unrescued
        (float_of_int !rescued /. float_of_int (max 1 blocked)))
    [ 0.1; 0.3; 0.5 ]

(* ------------------------------------------------------------------ *)
(* EXP-F: chase closure growth.                                        *)

let chase_growth ~seeds =
  header "EXP-F  Chase closure growth";
  Fmt.pr "%-10s %-16s %-16s@." "density" "rules before" "rules after";
  List.iter
    (fun density ->
      let before = ref 0 and after = ref 0 in
      for seed = 1 to seeds do
        let rng = Rng.make ~seed in
        let sys =
          System_gen.generate rng ~relations:5 ~servers:5 ~extra:1
            ~topology:System_gen.Chain
        in
        let policy = Authz_gen.generate rng ~density sys in
        before := !before + Authz.Policy.cardinality policy;
        let closed = Authz.Chase.close ~joins:sys.join_graph policy in
        after := !after + Authz.Policy.cardinality closed
      done;
      Fmt.pr "%-10.2f %-16.1f %-16.1f@." density
        (float_of_int !before /. float_of_int seeds)
        (float_of_int !after /. float_of_int seeds))
    [ 0.2; 0.4; 0.6 ]

(* ------------------------------------------------------------------ *)
(* EXP-A (wall-clock side): planner latency scales linearly in plan
   size. The bechamel micro-benchmarks in Main measure the same thing
   precisely; this table shows the trend at a glance.               *)

let planner_scaling () =
  header "EXP-A  Planner latency vs plan size (chain queries, full grants)";
  Fmt.pr "%-10s %-12s %-16s %-16s@." "joins" "plan nodes" "time/plan (us)"
    "us per join";
  List.iter
    (fun joins ->
      let relations = joins + 1 in
      let rng = Rng.make ~seed:123 in
      let sys =
        (* A fixed four-server federation: the paper's setting has a
           bounded number of parties, so candidate lists stay short and
           the traversal cost per node is constant. *)
        System_gen.generate rng ~relations ~servers:4 ~extra:2
          ~topology:System_gen.Chain
      in
      let policy =
        Authz_gen.generate (Rng.make ~seed:9) ~max_path:joins ~attr_keep:1.0
          ~density:1.0 sys
      in
      match Query_gen.generate_plan (Rng.make ~seed:3) ~joins sys with
      | None -> ()
      | Some plan ->
        let iterations = 200 in
        let t0 = Unix.gettimeofday () in
        for _ = 1 to iterations do
          ignore (Planner.Safe_planner.plan sys.catalog policy plan)
        done;
        let dt = Unix.gettimeofday () -. t0 in
        let per_plan = dt /. float_of_int iterations *. 1e6 in
        Fmt.pr "%-10d %-12d %-16.1f %-16.2f@." joins (Plan.size plan) per_plan
          (per_plan /. float_of_int joins))
    [ 2; 4; 8; 16; 32; 64 ]

(* ------------------------------------------------------------------ *)
(* EXP-F': the chase closure as a feasibility mechanism. The paper
   assumes policies are closed under derivation (Section 3.2); this
   measures what planning against the raw, un-closed policy loses. *)

let chase_feasibility ~seeds =
  header "EXP-F' Feasibility: raw policy vs chase-closed policy";
  Fmt.pr "%-10s %-14s %-14s %-14s@." "density" "raw" "closed" "recovered";
  List.iter
    (fun density ->
      let raw_ok = ref 0 and closed_ok = ref 0 and total = ref 0 in
      for seed = 1 to seeds do
        let rng = Rng.make ~seed in
        let sys =
          System_gen.generate rng ~relations:5 ~servers:5 ~extra:2
            ~topology:System_gen.Chain
        in
        let policy = Authz_gen.generate rng ~density sys in
        match Query_gen.generate_plan rng ~joins:3 sys with
        | None -> ()
        | Some plan ->
          incr total;
          let raw = Planner.Safe_planner.feasible sys.catalog policy plan in
          if raw then incr raw_ok;
          let closed =
            Authz.Chase.close ~joins:sys.join_graph policy
          in
          if Planner.Safe_planner.feasible sys.catalog closed plan then
            incr closed_ok
      done;
      Fmt.pr "%-10.2f %-14.3f %-14.3f %-14d@." density
        (float_of_int !raw_ok /. float_of_int (max 1 !total))
        (float_of_int !closed_ok /. float_of_int (max 1 !total))
        (!closed_ok - !raw_ok))
    [ 0.3; 0.5; 0.7 ]

(* ------------------------------------------------------------------ *)
(* EXP-G: join-order optimization — cost improvement and feasibility
   recovery. *)

let optimizer_gains ~seeds =
  header "EXP-G  Two-step optimization: join reordering (Section 5)";
  let model = Planner.Cost.uniform ~card:1000.0 in
  let model = { model with join_selectivity = 0.3 } in
  let default_feasible = ref 0
  and recovered = ref 0
  and still_blocked = ref 0
  and improvements = ref [] in
  for seed = 1 to seeds do
    let rng = Rng.make ~seed in
    let sys =
      System_gen.generate rng ~relations:5 ~servers:5 ~extra:2
        ~topology:(System_gen.Random { extra_edges = 2 })
    in
    let policy = Authz_gen.generate rng ~density:0.4 sys in
    match Query_gen.generate rng ~joins:3 sys with
    | None -> ()
    | Some query ->
      let t = Planner.Optimizer.optimize model sys.catalog policy query in
      let default = List.hd t.Planner.Optimizer.explored in
      (match default.Planner.Optimizer.outcome, t.Planner.Optimizer.best with
       | Planner.Optimizer.Feasible (_, dcost), Some best ->
         incr default_feasible;
         (match best.Planner.Optimizer.outcome with
          | Planner.Optimizer.Feasible (_, bcost) when bcost > 0.0 ->
            improvements := (dcost /. Float.max bcost 1.0) :: !improvements
          | _ -> ())
       | Planner.Optimizer.Infeasible _, Some _ -> incr recovered
       | Planner.Optimizer.Infeasible _, None -> incr still_blocked
       | Planner.Optimizer.Feasible _, None -> assert false)
  done;
  let n = List.length !improvements in
  let mean =
    List.fold_left ( +. ) 0.0 !improvements /. float_of_int (max 1 n)
  in
  Fmt.pr "written order feasible:       %d@." !default_feasible;
  Fmt.pr "recovered by reordering:      %d@." !recovered;
  Fmt.pr "infeasible in every order:    %d@." !still_blocked;
  Fmt.pr "cost: written/best ratio:     mean %.2fx over %d feasible queries@."
    mean n

(* ------------------------------------------------------------------ *)
(* EXP-H: makespan crossover — semi-join vs regular join as the
   network changes. *)

let makespan_crossover () =
  header
    "EXP-H  Makespan crossover: semi-join vs regular join across network \
     regimes";
  Fmt.pr
    "Single join, 1000 rows per relation, 10%% linkage: the semi-join \
     ships ~8x@.fewer bytes but pays an extra round trip.@.";
  let sys, plan, regular, semi = single_join_fixture () in
  let instances =
    Data_gen.instances (Rng.make ~seed:5) ~rows:1000 ~domain_scale:10.0 sys
  in
  let outcome a =
    match Distsim.Engine.execute sys.catalog ~instances plan a with
    | Ok o -> o
    | Error e -> Fmt.failwith "%a" Distsim.Engine.pp_error e
  in
  let semi_o = outcome semi and regular_o = outcome regular in
  Fmt.pr "%-14s %-14s %-16s %-16s %-8s@." "latency (ms)" "bandwidth"
    "semi-join (ms)" "regular (ms)" "winner";
  List.iter
    (fun (latency, bandwidth, label) ->
      let model = Distsim.Timing.uniform ~latency ~bandwidth () in
      let m a o =
        (Distsim.Timing.makespan model plan a o).Distsim.Timing.makespan
      in
      let sm = m semi semi_o and rm = m regular regular_o in
      Fmt.pr "%-14.1f %-14s %-16.3f %-16.3f %-8s@." (latency *. 1000.0) label
        (sm *. 1000.0) (rm *. 1000.0)
        (if sm < rm then "semi" else "regular"))
    [
      (0.001, 100.0, "100 B/s");
      (0.001, 1000.0, "1 KB/s");
      (0.010, 10e3, "10 KB/s");
      (0.010, 10e6, "10 MB/s");
      (0.100, 10e6, "10 MB/s");
    ]

(* ------------------------------------------------------------------ *)
(* EXP-E extension: coordinator vs proxy rescue on the research
   scenario. *)

let coordinator_demo () =
  header "EXP-E' Coordinator vs proxy (research scenario)";
  let module R = Scenario.Research in
  let plan = R.outcomes_plan () in
  Fmt.pr "outcomes query feasible among operands: %b@."
    (Planner.Safe_planner.feasible R.catalog R.policy plan);
  match
    Planner.Third_party.plan ~helpers:[ R.s_t ] R.catalog R.policy plan
  with
  | Error _ -> Fmt.pr "matcher cannot rescue (unexpected)@."
  | Ok { assignment; rescues } ->
    Fmt.pr "%a@."
      Fmt.(list ~sep:(any "@
") Planner.Third_party.pp_rescue)
      rescues;
    (match
       Distsim.Engine.execute R.catalog ~instances:R.instances plan assignment
     with
     | Ok { network; _ } ->
       Fmt.pr "flows:@.%a@." Distsim.Network.pp network;
       Fmt.pr "audit clean: %b@." (Distsim.Audit.is_clean R.policy network)
     | Error e -> Fmt.pr "engine: %a@." Distsim.Engine.pp_error e)

(* ------------------------------------------------------------------ *)
(* EXP-K: ablation of principle ii (prefer high-join-count servers). *)

let count_preference_ablation ~seeds =
  header
    "EXP-K  Ablation: principle ii (prefer high-join-count candidates)";
  let model = Planner.Cost.uniform ~card:1000.0 in
  let model = { model with join_selectivity = 0.3 } in
  let with_pref = ref [] and without_pref = ref [] in
  for seed = 1 to seeds do
    let rng = Rng.make ~seed in
    let sys =
      System_gen.generate rng ~relations:6 ~servers:4 ~extra:2
        ~topology:System_gen.Chain
    in
    let policy =
      Authz_gen.generate rng ~attr_keep:1.0 ~density:0.9 sys
    in
    match Query_gen.generate_plan rng ~joins:4 sys with
    | None -> ()
    | Some plan ->
      let cost config =
        match Planner.Safe_planner.plan ~config sys.catalog policy plan with
        | Ok { assignment; _ } ->
          Some (Planner.Cost.assignment_cost model sys.catalog plan assignment)
        | Error _ -> None
      in
      let base = Planner.Safe_planner.default_config in
      (match
         ( cost base,
           cost { base with Planner.Safe_planner.prefer_high_count = false } )
       with
       | Some a, Some b ->
         with_pref := a :: !with_pref;
         without_pref := b :: !without_pref
       | _ -> ())
  done;
  let mean xs =
    List.fold_left ( +. ) 0.0 xs /. float_of_int (max 1 (List.length xs))
  in
  Fmt.pr "plans compared:              %d@." (List.length !with_pref);
  Fmt.pr "mean cost with principle ii: %.0f@." (mean !with_pref);
  Fmt.pr "mean cost without:           %.0f@." (mean !without_pref);
  Fmt.pr "ratio (without/with):        %.3f@."
    (mean !without_pref /. Float.max 1.0 (mean !with_pref))

(* ------------------------------------------------------------------ *)
(* EXP-I: concurrent workload under resource contention (DES).         *)

let concurrent_workload () =
  header
    "EXP-I  Concurrent queries under contention (discrete-event \
     simulation)";
  let module M = Scenario.Medical in
  let plan = M.example_plan () in
  let assignment =
    match Planner.Safe_planner.plan M.catalog M.policy plan with
    | Ok r -> r.Planner.Safe_planner.assignment
    | Error _ -> assert false
  in
  let outcome =
    match Distsim.Engine.execute M.catalog ~instances:M.instances plan assignment with
    | Ok o -> o
    | Error e -> Fmt.failwith "%a" Distsim.Engine.pp_error e
  in
  let model = Distsim.Timing.uniform () in
  let solo =
    (Distsim.Des.simulate
       (Distsim.Des.tasks_of_execution model plan assignment outcome))
      .Distsim.Des.makespan
  in
  Fmt.pr
    "N copies of the medical query released together; solo makespan %.3f \
     ms@."
    (solo *. 1000.0);
  Fmt.pr "%-6s %-16s %-12s %-24s@." "N" "makespan (ms)" "vs N x solo"
    "busiest resource";
  List.iter
    (fun n ->
      let tasks =
        List.concat_map
          (fun i ->
            Distsim.Des.tasks_of_execution
              ~prefix:(Printf.sprintf "q%d" i)
              model plan assignment outcome)
          (List.init n (fun i -> i))
      in
      let run = Distsim.Des.simulate tasks in
      let busiest =
        List.fold_left
          (fun (br, bu) (r, u) -> if u > bu then (r, u) else (br, bu))
          ("-", 0.0) run.Distsim.Des.utilization
      in
      Fmt.pr "%-6d %-16.3f %-12.2f %s (%.0f%%)@." n
        (run.Distsim.Des.makespan *. 1000.0)
        (run.Distsim.Des.makespan /. (float_of_int n *. solo))
        (fst busiest) (snd busiest *. 100.0))
    [ 1; 2; 4; 8; 16; 32 ]

(* ------------------------------------------------------------------ *)
(* EXP-J: replication — feasibility and communication. *)

let replication_effect ~seeds =
  header "EXP-J  Replication: feasibility and wire traffic";
  Fmt.pr "%-14s %-14s %-18s@." "replication" "feasibility" "mean bytes moved";
  List.iter
    (fun replication ->
      let feasible = ref 0 and total = ref 0 and bytes = ref 0 in
      for seed = 1 to seeds do
        let rng = Rng.make ~seed in
        let sys =
          System_gen.generate ~replication rng ~relations:5 ~servers:5
            ~extra:2 ~topology:System_gen.Chain
        in
        let policy = Authz_gen.generate rng ~density:0.5 sys in
        match Query_gen.generate_plan rng ~joins:3 sys with
        | None -> ()
        | Some plan ->
          incr total;
          (match Planner.Safe_planner.plan sys.catalog policy plan with
           | Error _ -> ()
           | Ok { assignment; _ } ->
             incr feasible;
             let instances = Data_gen.instances rng ~rows:50 sys in
             (match
                Distsim.Engine.execute sys.catalog ~instances plan assignment
              with
              | Ok { network; _ } ->
                bytes := !bytes + Distsim.Network.total_bytes network
              | Error _ -> ()))
      done;
      Fmt.pr "%-14.2f %-14.3f %-18.0f@." replication
        (float_of_int !feasible /. float_of_int (max 1 !total))
        (float_of_int !bytes /. float_of_int (max 1 !feasible)))
    [ 0.0; 0.5; 1.0 ]

let run_all ~seeds =
  planner_scaling ();
  feasibility_density ~seeds;
  comm_cost ();
  comm_cost_medical ();
  greedy_vs_exhaustive ~seeds;
  third_party_rescue ~seeds;
  coordinator_demo ();
  chase_feasibility ~seeds:(min seeds 50);
  optimizer_gains ~seeds;
  makespan_crossover ();
  concurrent_workload ();
  count_preference_ablation ~seeds;
  replication_effect ~seeds;
  chase_growth ~seeds:(min seeds 30)
