bench/tables.ml: Attribute Authz Authz_gen Catalog Data_gen Distsim Float Fmt Joinpath List Plan Planner Printf Query_gen Relalg Rng Scenario Schema Server String System_gen Unix Workload
