bench/main.mli:
