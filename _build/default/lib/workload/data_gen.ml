open Relalg

let is_key schema a = List.exists (Attribute.equal a) (Schema.key schema)

(* Link attributes are named Ri_to_Rj by System_gen. *)
let is_link a =
  let name = Attribute.name a in
  let n = String.length name in
  let rec at i = i + 4 <= n && (String.sub name i 4 = "_to_" || at (i + 1)) in
  at 0

let instance rng ~rows ?(domain_scale = 1.0) schema =
  let domain =
    max 1 (int_of_float (float_of_int rows *. domain_scale))
  in
  let row i =
    List.map
      (fun a ->
        if is_key schema a then Value.Int i
        else if is_link a then Value.Int (Rng.int rng domain)
        else Value.Int (Rng.int rng 1000))
      (Schema.attributes schema)
  in
  Relation.of_rows schema (List.init rows row)

let instances rng ~rows ?domain_scale (sys : System_gen.t) =
  let table =
    List.map
      (fun schema ->
        (Schema.name schema, instance rng ~rows ?domain_scale schema))
      (Catalog.schemas sys.catalog)
  in
  fun name -> List.assoc_opt name table
