(** Random join queries over a synthetic system.

    A query is generated as a random walk over the join graph: starting
    from a random relation, [joins] edges to not-yet-visited relations
    are added (so the FROM clause is a connected subtree, left-deep as
    the paper's queries). The SELECT clause keeps each visited
    attribute with probability [select_keep] (at least one); with
    probability [where_prob] a WHERE comparison on a random visited
    attribute is added. *)

open Relalg

(** [generate rng ~joins sys] — a query with exactly [joins] joins, or
    [None] if the walk cannot be extended that far (join graph too
    small or disconnected). *)
val generate :
  Rng.t ->
  ?select_keep:float ->
  ?where_prob:float ->
  joins:int ->
  System_gen.t ->
  Query.t option

(** The corresponding minimized plan, for convenience. *)
val generate_plan :
  Rng.t ->
  ?select_keep:float ->
  ?where_prob:float ->
  joins:int ->
  System_gen.t ->
  Plan.t option
