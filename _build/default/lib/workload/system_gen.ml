open Relalg

type t = {
  catalog : Catalog.t;
  join_graph : Joinpath.Cond.t list;
  edges : (string * string * Joinpath.Cond.t) list;
}

type topology =
  | Chain
  | Star
  | Random of { extra_edges : int }

let rel_name i = Printf.sprintf "R%d" i
let server_name i = Printf.sprintf "S%d" i

let edge_pairs rng ~relations ~topology =
  let n = relations in
  let tree =
    match topology with
    | Chain -> List.init (max 0 (n - 1)) (fun i -> (i, i + 1))
    | Star -> List.init (max 0 (n - 1)) (fun i -> (0, i + 1))
    | Random _ ->
      List.init (max 0 (n - 1)) (fun j ->
          let j = j + 1 in
          (Rng.int rng j, j))
  in
  match topology with
  | Chain | Star -> tree
  | Random { extra_edges } ->
    let mem edges e = List.mem e edges in
    let rec add edges k attempts =
      if k = 0 || attempts = 0 || n < 3 then edges
      else
        let i = Rng.int rng n and j = Rng.int rng n in
        let e = (min i j, max i j) in
        if i = j || mem edges e then add edges k (attempts - 1)
        else add (e :: edges) (k - 1) (attempts - 1)
    in
    List.rev (add (List.rev tree) extra_edges (extra_edges * 20))

let generate ?(replication = 0.0) rng ~relations ~servers ~extra ~topology =
  if relations < 1 then invalid_arg "System_gen.generate: relations < 1";
  if servers < 1 then invalid_arg "System_gen.generate: servers < 1";
  let pairs = edge_pairs rng ~relations ~topology in
  let link_attrs i =
    List.filter_map
      (fun (a, b) ->
        if a = i then Some (Printf.sprintf "R%d_to_R%d" a b) else None)
      pairs
  in
  let schema i =
    let key = Printf.sprintf "R%d_k" i in
    let extras = List.init extra (fun j -> Printf.sprintf "R%d_a%d" i j) in
    Schema.make (rel_name i) ~key:[ key ] ((key :: extras) @ link_attrs i)
  in
  let schemas = List.init relations schema in
  let catalog =
    Catalog.of_list
      (List.mapi
         (fun i s -> (s, Server.make (server_name (i mod servers))))
         schemas)
  in
  let catalog =
    if replication <= 0.0 || servers < 2 then catalog
    else
      List.fold_left
        (fun catalog schema ->
          if Rng.flip rng replication then
            let replica = Server.make (server_name (Rng.int rng servers)) in
            match Catalog.replicate catalog (Schema.name schema) ~at:replica with
            | Ok c -> c
            | Error _ -> catalog
          else catalog)
        catalog schemas
  in
  let find_attr name =
    match Catalog.resolve_attribute catalog name with
    | Ok a -> a
    | Error e ->
      invalid_arg (Fmt.str "System_gen.generate: %a" Catalog.pp_error e)
  in
  let edges =
    List.map
      (fun (a, b) ->
        let link = find_attr (Printf.sprintf "R%d_to_R%d" a b) in
        let key = find_attr (Printf.sprintf "R%d_k" b) in
        (rel_name a, rel_name b, Joinpath.Cond.eq link key))
      pairs
  in
  {
    catalog;
    join_graph = List.map (fun (_, _, c) -> c) edges;
    edges;
  }

let servers t = Server.Set.elements (Catalog.servers t.catalog)

let attr t name =
  match Catalog.resolve_attribute t.catalog name with
  | Ok a -> a
  | Error e -> invalid_arg (Fmt.str "System_gen.attr: %a" Catalog.pp_error e)
