open Relalg
open Authz

let schema_of catalog name =
  match Catalog.relation catalog name with
  | Ok s -> s
  | Error e -> invalid_arg (Fmt.str "Authz_gen: %a" Catalog.pp_error e)

let base_grants (sys : System_gen.t) =
  List.fold_left
    (fun policy schema ->
      let server =
        match Catalog.server_of sys.catalog (Schema.name schema) with
        | Ok s -> s
        | Error _ -> assert false
      in
      Policy.add
        (Authorization.make_exn ~attrs:(Schema.attribute_set schema)
           ~path:Joinpath.empty server)
        policy)
    Policy.empty
    (Catalog.schemas sys.catalog)

(* Connected sub-forests are grown edge by edge; a canonical key (the
   sorted list of edge indices) deduplicates grow orders. Size-0
   subtrees are the single relations. *)
let connected_subtrees (sys : System_gen.t) ~max_edges =
  let edges = Array.of_list sys.edges in
  let m = Array.length edges in
  let endpoints i =
    let a, b, _ = edges.(i) in
    (a, b)
  in
  let seen = Hashtbl.create 64 in
  let results = ref [] in
  let emit rels edge_idxs =
    let key = String.concat "," (List.map string_of_int edge_idxs) in
    if not (Hashtbl.mem seen key) then (
      Hashtbl.add seen key ();
      let conds = List.map (fun i -> let _, _, c = edges.(i) in c) edge_idxs in
      results := (List.sort_uniq String.compare rels, conds) :: !results)
  in
  (* Size 0: single relations. *)
  List.iter
    (fun schema -> results := ([ Schema.name schema ], []) :: !results)
    (Catalog.schemas sys.catalog);
  (* Grow connected edge sets, memoised on the canonical key so each
     subtree is expanded once regardless of grow order. *)
  let expanded = Hashtbl.create 64 in
  let rec grow rels edge_idxs =
    let sorted = List.sort compare edge_idxs in
    let key = String.concat "," (List.map string_of_int sorted) in
    if not (Hashtbl.mem expanded key) then begin
      Hashtbl.add expanded key ();
      emit rels sorted;
      if List.length edge_idxs < max_edges then
        for i = 0 to m - 1 do
          if not (List.mem i edge_idxs) then (
            let a, b = endpoints i in
            if List.mem a rels || List.mem b rels then
              grow (a :: b :: rels) (i :: edge_idxs))
        done
    end
  in
  for i = 0 to m - 1 do
    let a, b = endpoints i in
    grow [ a; b ] [ i ]
  done;
  List.rev !results

let generate rng ?(max_path = 3) ?(attr_keep = 0.8) ~density
    (sys : System_gen.t) =
  let subtrees = connected_subtrees sys ~max_edges:max_path in
  let servers = System_gen.servers sys in
  let grant policy server (rels, conds) =
    if not (Rng.flip rng density) then policy
    else
      let path = Joinpath.of_list conds in
      let forced = Joinpath.attributes path in
      let attrs =
        List.fold_left
          (fun acc rel ->
            let schema = schema_of sys.catalog rel in
            let kept =
              Rng.subset rng ~p:attr_keep (Schema.attributes schema)
            in
            Attribute.Set.union acc (Attribute.Set.of_list kept))
          forced rels
      in
      if Attribute.Set.is_empty attrs then policy
      else
        match Authorization.make ~attrs ~path server with
        | Ok a -> Policy.add a policy
        | Error _ -> policy
  in
  List.fold_left
    (fun policy server ->
      List.fold_left (fun p st -> grant p server st) policy subtrees)
    (base_grants sys) servers
