(** Synthetic distributed systems: schemas placed at servers plus a
    join graph, in the shape of Figure 1 but of arbitrary size.

    Relations are named [R0, R1, ...]; relation [Ri] has a key [Ri_k],
    [extra] payload attributes [Ri_a0, Ri_a1, ...], and one link
    attribute [Ri_to_Rj] per join-graph edge to a higher-numbered
    neighbour [Rj]; the edge's condition is [Ri_to_Rj = Rj_k]. Servers
    are named [S0, S1, ...] and relations are placed round-robin. *)

open Relalg

type t = {
  catalog : Catalog.t;
  join_graph : Joinpath.Cond.t list;
      (** one condition per edge, in edge order *)
  edges : (string * string * Joinpath.Cond.t) list;
      (** (lower relation, higher relation, condition) *)
}

type topology =
  | Chain  (** R0 - R1 - ... - R(n-1) *)
  | Star  (** R0 joined to every other relation *)
  | Random of { extra_edges : int }
      (** a random spanning tree plus [extra_edges] chords *)

(** [generate rng ~relations ~servers ~extra ~topology] builds a system
    of [relations] relations over [servers] servers with [extra]
    payload attributes per relation. [replication] (default [0.0]) is
    the probability that a relation gains one replica at another
    random server.

    @raise Invalid_argument if [relations < 1] or [servers < 1]. *)
val generate :
  ?replication:float ->
  Rng.t ->
  relations:int ->
  servers:int ->
  extra:int ->
  topology:topology ->
  t

(** All servers, in name order. *)
val servers : t -> Server.t list

(** Resolve an attribute by bare name.
    @raise Invalid_argument on unknown names. *)
val attr : t -> string -> Attribute.t
