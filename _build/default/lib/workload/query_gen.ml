open Relalg

let schema_of catalog name =
  match Catalog.relation catalog name with
  | Ok s -> s
  | Error e -> invalid_arg (Fmt.str "Query_gen: %a" Catalog.pp_error e)

let generate rng ?(select_keep = 0.5) ?(where_prob = 0.3) ~joins
    (sys : System_gen.t) =
  let relations = List.map Schema.name (Catalog.schemas sys.catalog) in
  if relations = [] then None
  else
    let base = Rng.choose rng relations in
    (* Random walk: repeatedly pick an edge connecting a visited
       relation to an unvisited one. *)
    let rec walk visited acc k =
      if k = 0 then Some (List.rev acc)
      else
        let frontier =
          List.filter
            (fun (a, b, _) ->
              (List.mem a visited && not (List.mem b visited))
              || (List.mem b visited && not (List.mem a visited)))
            sys.edges
        in
        match frontier with
        | [] -> None
        | _ ->
          let a, b, cond = Rng.choose rng frontier in
          let fresh = if List.mem a visited then b else a in
          walk (fresh :: visited) ((fresh, cond) :: acc) (k - 1)
    in
    match walk [ base ] [] joins with
    | None -> None
    | Some steps ->
      let visited = base :: List.map fst steps in
      let all_attrs =
        List.concat_map
          (fun rel -> Schema.attributes (schema_of sys.catalog rel))
          visited
      in
      let select = Rng.nonempty_subset rng ~p:select_keep all_attrs in
      let where =
        if Rng.flip rng where_prob then
          let a = Rng.choose rng all_attrs in
          Predicate.Cmp (a, Predicate.Le, Predicate.Const (Value.Int (Rng.int rng 100)))
        else Predicate.True
      in
      (match
         Query.make sys.catalog ~select ~base ~joins:steps ~where
       with
       | Ok q -> Some q
       | Error e ->
         invalid_arg (Fmt.str "Query_gen.generate: %a" Query.pp_error e))

let generate_plan rng ?select_keep ?where_prob ~joins sys =
  Option.map Query.to_plan (generate rng ?select_keep ?where_prob ~joins sys)
