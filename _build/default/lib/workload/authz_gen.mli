(** Random authorization policies over a synthetic system.

    Policies are generated per server:

    - every server is granted its own base relations in full (the paper
      assumes "each server to be authorized to view the relation it
      holds", Section 4);
    - additionally, for every server and every connected subtree of the
      join graph up to [max_path] edges, with probability [density] the
      server is granted the attributes of the subtree's relations
      (each kept with probability [attr_keep], join attributes always
      kept so that the rule is usable in planning) under exactly that
      subtree's join path.

    [density = 0] leaves only the base grants (almost every multi-party
    join is infeasible); [density = 1] with [attr_keep = 1] authorizes
    everything (every plan is feasible). Sweeping density is
    experiment EXP-B. *)

open Relalg

val generate :
  Rng.t ->
  ?max_path:int ->
  ?attr_keep:float ->
  density:float ->
  System_gen.t ->
  Authz.Policy.t

(** Just the base grants: each server sees its own relations. *)
val base_grants : System_gen.t -> Authz.Policy.t

(** All connected subtrees of the join graph with at most [max_edges]
    edges, as (relation set, edge list) pairs. Exposed for tests and
    for the chase bench. *)
val connected_subtrees :
  System_gen.t -> max_edges:int -> (string list * Joinpath.Cond.t list) list
