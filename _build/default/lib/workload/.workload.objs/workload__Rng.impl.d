lib/workload/rng.ml: Array List Random
