lib/workload/system_gen.mli: Attribute Catalog Joinpath Relalg Rng Server
