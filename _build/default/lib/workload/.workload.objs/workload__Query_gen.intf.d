lib/workload/query_gen.mli: Plan Query Relalg Rng System_gen
