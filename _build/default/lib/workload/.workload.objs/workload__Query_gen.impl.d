lib/workload/query_gen.ml: Catalog Fmt List Option Predicate Query Relalg Rng Schema System_gen Value
