lib/workload/data_gen.ml: Attribute Catalog List Relalg Relation Rng Schema String System_gen Value
