lib/workload/data_gen.mli: Relalg Relation Rng Schema System_gen
