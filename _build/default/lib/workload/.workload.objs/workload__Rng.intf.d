lib/workload/rng.mli:
