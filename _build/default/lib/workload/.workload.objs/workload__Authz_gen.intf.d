lib/workload/authz_gen.mli: Authz Joinpath Relalg Rng System_gen
