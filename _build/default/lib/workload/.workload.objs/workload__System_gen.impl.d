lib/workload/system_gen.ml: Catalog Fmt Joinpath List Printf Relalg Rng Schema Server
