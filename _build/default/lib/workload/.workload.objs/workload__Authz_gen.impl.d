lib/workload/authz_gen.ml: Array Attribute Authorization Authz Catalog Fmt Hashtbl Joinpath List Policy Relalg Rng Schema String System_gen
