(** Random relation instances for synthetic systems.

    Key attributes of relation [Ri] take the distinct values
    [0 .. rows-1]; link attributes [Ri_to_Rj] take uniform values in
    [\[0, rows × domain_scale)], so the fraction of link values hitting
    an existing key — the join selectivity — is [1 / domain_scale];
    payload attributes take uniform values in [\[0, 1000)]. *)

open Relalg

(** [instances rng ~rows ~domain_scale sys] generates one instance per
    relation of the system and returns the lookup used by the
    simulator. *)
val instances :
  Rng.t ->
  rows:int ->
  ?domain_scale:float ->
  System_gen.t ->
  string ->
  Relation.t option

(** Instance for a single schema (keys sequential, other attributes
    uniform in the scaled domain). *)
val instance :
  Rng.t -> rows:int -> ?domain_scale:float -> Schema.t -> Relation.t
