lib/authz/authorization.ml: Attribute Fmt Joinpath List Relalg Server String
