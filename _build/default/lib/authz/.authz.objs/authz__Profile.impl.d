lib/authz/profile.ml: Algebra Attribute Fmt Joinpath Predicate Relalg Schema
