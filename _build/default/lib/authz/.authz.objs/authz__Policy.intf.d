lib/authz/policy.mli: Authorization Fmt Profile Relalg Server
