lib/authz/chase.mli: Joinpath Policy Profile Relalg Server
