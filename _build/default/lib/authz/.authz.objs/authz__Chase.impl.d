lib/authz/chase.ml: Attribute Authorization Joinpath List Policy Printf Profile Relalg Server
