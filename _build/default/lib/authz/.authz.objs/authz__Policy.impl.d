lib/authz/policy.ml: Attribute Authorization Bool Fmt Joinpath List Map Option Profile Relalg Server Set
