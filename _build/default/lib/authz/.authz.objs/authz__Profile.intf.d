lib/authz/profile.mli: Algebra Attribute Fmt Joinpath Relalg Schema
