lib/authz/authorization.mli: Attribute Fmt Joinpath Relalg Server
