(** Authorizations (Definition 3.1): rules

    [\[Attributes, Join Path\] -> Server]

    meaning that [Server] is authorized to view the set [Attributes]
    for which the joins of the involved relations satisfy [Join Path].

    The join path must include (at least) every relation owning one of
    the attributes whenever it is non-empty; when empty, all attributes
    must come from one relation (Definition 3.1, condition 2).
    Relations appearing in the path but owning no released attribute
    encode {e connectivity constraints} and {e instance-based
    restrictions} (Section 3.1). *)

open Relalg

type t = private {
  attrs : Attribute.Set.t;
  path : Joinpath.t;
  server : Server.t;
}

type error =
  | Empty_attributes
  | Attributes_not_covered of Attribute.Set.t
      (** with a non-empty path: attributes of relations that the path
          does not touch *)
  | Multiple_relations_without_path of string list
      (** empty path but attributes from several relations *)

val pp_error : error Fmt.t

(** [make ~attrs ~path server] checks Definition 3.1. A single-relation
    attribute set with an empty path is always fine; a non-empty path
    must mention every relation contributing attributes. *)
val make :
  attrs:Attribute.Set.t -> path:Joinpath.t -> Server.t -> (t, error) result

(** Like {!make}. @raise Invalid_argument on rule violations. *)
val make_exn : attrs:Attribute.Set.t -> path:Joinpath.t -> Server.t -> t

(** Constructor for {e negative} rules (open policies, footnote 1).
    A denial may name attributes of several relations with an empty
    path — "never this association, in any join context" — so only the
    non-emptiness of [attrs] is enforced.
    @raise Invalid_argument on an empty attribute set. *)
val make_denial : attrs:Attribute.Set.t -> path:Joinpath.t -> Server.t -> t

(** Relations mentioned by the rule (owners of [attrs] plus relations of
    the path). *)
val relations : t -> string list

val compare : t -> t -> int
val equal : t -> t -> bool

(** [\[{...}, {...}\] -> S] as in Figure 3. *)
val pp : t Fmt.t

val to_string : t -> string
