open Relalg

(* One merge step: can [j] combine the views of [a1] and [a2]?  Both
   sides of [j] must be visible, one side per view (in either
   orientation), and the two rules must belong to the same server. *)
let merge (a1 : Authorization.t) (a2 : Authorization.t) j =
  if not (Server.equal a1.server a2.server) then None
  else
    let covers attrs side = List.for_all (fun a -> Attribute.Set.mem a attrs) side in
    let jl = Joinpath.Cond.left j and jr = Joinpath.Cond.right j in
    let ok =
      (covers a1.attrs jl && covers a2.attrs jr)
      || (covers a1.attrs jr && covers a2.attrs jl)
    in
    if not ok then None
    else
      let path = Joinpath.add j (Joinpath.union a1.path a2.path) in
      (* Skip merges that add nothing: same path and no new attribute. *)
      let attrs = Attribute.Set.union a1.attrs a2.attrs in
      match Authorization.make ~attrs ~path a1.server with
      | Ok derived -> Some derived
      | Error _ -> None

let close ?(max_rules = 100_000) ~joins policy =
  let rec fixpoint policy =
    if Policy.cardinality policy > max_rules then
      invalid_arg
        (Printf.sprintf "Chase.close: closure exceeds %d rules" max_rules);
    let rules = Policy.authorizations policy in
    let fresh =
      List.concat_map
        (fun a1 ->
          List.concat_map
            (fun a2 ->
              List.filter_map
                (fun j ->
                  match merge a1 a2 j with
                  | Some d when not (Policy.can_view policy
                                       (Profile.make ~pi:d.Authorization.attrs
                                          ~join:d.Authorization.path
                                          ~sigma:Attribute.Set.empty)
                                       d.Authorization.server) ->
                    Some d
                  | _ -> None)
                joins)
            rules)
        rules
    in
    if fresh = [] then policy
    else fixpoint (List.fold_left (fun p d -> Policy.add d p) policy fresh)
  in
  fixpoint policy

let derives ~joins policy profile s =
  Policy.can_view (close ~joins policy) profile s
