(** Closure of a policy under derivation — the "chase" procedure of
    Section 3.2.

    The paper observes that a server holding authorizations for all the
    base relations underlying a view can compute the view by itself, so
    the authorization for the view is {e implied}, and assumes the
    policy closed "by means of a chase procedure \[2\] that derives all
    the authorizations implied directly or indirectly by those
    explicitly specified" — without giving the procedure. Our concrete
    reading (documented in DESIGN.md):

    a server [S] with rules [\[A1, J1\] -> S] and [\[A2, J2\] -> S] can
    locally join its two authorized views on a join condition [j]
    (drawn from the system's join graph) whenever both sides of [j] are
    visible to it ([j_l ⊆ A1] and [j_r ⊆ A2]); the result is the view
    [\[A1 ∪ A2, J1 ∪ J2 ∪ {j}\] -> S]. We iterate this inference to a
    fixpoint.

    Projection closure needs no new rules: condition 1 of
    Definition 3.3 already accepts any subset of an authorized
    attribute set. *)

open Relalg

(** [close ~joins policy] is the least fixpoint of the merge rule above
    over the join conditions [joins] (the join graph — the lines of
    Figure 1). The result contains [policy].

    [max_rules] (default [100_000]) bounds the size of the closure; the
    bound can only be hit on pathological inputs (the closure is finite
    — at most one rule per (attribute set, join path) pair — but can be
    exponential in the join graph).

    @raise Invalid_argument when the bound is exceeded. *)
val close : ?max_rules:int -> joins:Joinpath.Cond.t list -> Policy.t -> Policy.t

(** [derives ~joins policy profile s] — convenience: does the closure
    admit the release of [profile] to [s]? *)
val derives :
  joins:Joinpath.Cond.t list -> Policy.t -> Profile.t -> Server.t -> bool
