open Relalg
module Auth_set = Set.Make (Authorization)

(* [can_view] (Definition 3.3) requires join-path EQUALITY, so rules are
   additionally indexed by (server, canonical path): a membership test
   inspects only the rules that can possibly match, which keeps the
   planner's inner loop fast on large policies. *)
module Key = struct
  type t = Server.t * Joinpath.t

  let compare (s1, p1) (s2, p2) =
    match Server.compare s1 s2 with
    | 0 -> Joinpath.compare p1 p2
    | c -> c
end

module Index = Map.Make (Key)

type t = {
  rules : Auth_set.t;
  index : Attribute.Set.t list Index.t;
      (** attribute sets granted per (server, path) *)
  negative : Auth_set.t;  (** denials; only consulted when [open_mode] *)
  open_mode : bool;
}

let empty =
  {
    rules = Auth_set.empty;
    index = Index.empty;
    negative = Auth_set.empty;
    open_mode = false;
  }

let add (a : Authorization.t) t =
  if Auth_set.mem a t.rules then t
  else
    {
      t with
      rules = Auth_set.add a t.rules;
      index =
        Index.update
          (a.server, a.path)
          (fun existing ->
            Some (a.attrs :: Option.value ~default:[] existing))
          t.index;
    }

let remove (a : Authorization.t) t =
  if not (Auth_set.mem a t.rules) then t
  else
    {
      t with
      rules = Auth_set.remove a t.rules;
      index =
        Index.update
          (a.server, a.path)
          (fun existing ->
            match
              List.filter
                (fun attrs -> not (Attribute.Set.equal attrs a.attrs))
                (Option.value ~default:[] existing)
            with
            | [] -> None
            | rest -> Some rest)
          t.index;
    }

let of_list auths = List.fold_left (fun t a -> add a t) empty auths

let open_policy denials =
  { empty with negative = Auth_set.of_list denials; open_mode = true }

let is_open t = t.open_mode
let denials t = Auth_set.elements t.negative
let add_denial a t = { t with negative = Auth_set.add a t.negative }
let remove_denial a t = { t with negative = Auth_set.remove a t.negative }

let union a b = Auth_set.fold add b.rules a

let authorizations t = Auth_set.elements t.rules

let view t s =
  Auth_set.elements
    (Auth_set.filter
       (fun (a : Authorization.t) -> Server.equal a.server s)
       t.rules)

let cardinality t = Auth_set.cardinal t.rules

let servers t =
  Auth_set.fold
    (fun (a : Authorization.t) acc -> Server.Set.add a.server acc)
    t.rules Server.Set.empty

(* A denial [A, J] -> S matches when all of A is visible and the view's
   path contains J. *)
let denied t (profile : Profile.t) s =
  let visible = Profile.visible profile in
  Auth_set.exists
    (fun (d : Authorization.t) ->
      Server.equal d.server s
      && Attribute.Set.subset d.attrs visible
      && Joinpath.subset d.path profile.join)
    t.negative

let can_view t (profile : Profile.t) s =
  if t.open_mode then not (denied t profile s)
  else
    match Index.find_opt (s, profile.join) t.index with
    | None -> false
    | Some grants ->
      let visible = Profile.visible profile in
      List.exists (fun attrs -> Attribute.Set.subset visible attrs) grants

let authorizing_rule t (profile : Profile.t) s =
  if t.open_mode then None
  else
    let admits (a : Authorization.t) =
      Attribute.Set.subset (Profile.visible profile) a.attrs
      && Joinpath.equal profile.join a.path
    in
    List.find_opt admits (view t s)

let equal a b =
  Bool.equal a.open_mode b.open_mode
  && Auth_set.equal a.rules b.rules
  && Auth_set.equal a.negative b.negative

let pp ppf t =
  if t.open_mode then
    let pp_denial ppf (i, a) =
      Fmt.pf ppf "%2d DENY %a" (i + 1) Authorization.pp a
    in
    Fmt.pf ppf "@[<v>(open policy)@,%a@]"
      Fmt.(list ~sep:(any "@\n") pp_denial)
      (List.mapi (fun i a -> (i, a)) (denials t))
  else
    let pp_numbered ppf (i, a) =
      Fmt.pf ppf "%2d %a" (i + 1) Authorization.pp a
    in
    Fmt.(list ~sep:(any "@\n") pp_numbered)
      ppf
      (List.mapi (fun i a -> (i, a)) (authorizations t))
