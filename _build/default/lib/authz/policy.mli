(** Policies: the set [A] of authorizations of the distributed system,
    and the access-control decision of Definition 3.3.

    The default policy is "closed" (Section 3.1): a release is allowed
    only if some authorization explicitly permits it. Footnote 1 notes
    the approach "can be adapted to an open policy scenario, where data
    are visible by default and negative rules specify restrictions" —
    {!open_policy} builds such a policy. Our reading of a negative rule
    [\[A, J\] -> S] (DESIGN.md): [S] must not receive any view revealing
    {e all} of [A] under a join path {e containing} [J] (denials are
    upward-closed in information: with [J ⊆ path] and [A ⊆ visible],
    more information is still denied; the empty [J] denies the
    association [A] in every context). Everything not denied is
    allowed. *)

open Relalg

type t

val empty : t
val add : Authorization.t -> t -> t

(** [remove a t] — [t] without rule [a] (no-op when absent). *)
val remove : Authorization.t -> t -> t
val of_list : Authorization.t list -> t
val union : t -> t -> t

(** An open policy from its negative rules. *)
val open_policy : Authorization.t list -> t

val is_open : t -> bool

(** Negative rules of an open policy ([[]] for closed ones). *)
val denials : t -> Authorization.t list

val add_denial : Authorization.t -> t -> t
val remove_denial : Authorization.t -> t -> t

(** All authorizations, sorted. *)
val authorizations : t -> Authorization.t list

(** [view t s] is the list of rules granted to [s] — the [view(S)] used
    by the paper's [CanView] function (Figure 6). *)
val view : t -> Server.t -> Authorization.t list

val cardinality : t -> int
val servers : t -> Server.Set.t

(** [can_view t profile s] decides Definition 3.3: true iff some
    authorization [\[A, J\] -> s] satisfies both

    + [profile.pi ∪ profile.sigma ⊆ A], and
    + [profile.join = J] (equality — a containing path would leak the
      association with relations the server may not see, Section 3.2).

    This is the paper's [CanView] (Figure 6). *)
val can_view : t -> Profile.t -> Server.t -> bool

(** The authorization justifying the release, if any — used by audit
    trails to cite the admitting rule. *)
val authorizing_rule : t -> Profile.t -> Server.t -> Authorization.t option

val equal : t -> t -> bool

(** Figure-3 style listing, numbered from 1. *)
val pp : t Fmt.t
