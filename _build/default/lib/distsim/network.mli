(** The message log of a simulated distributed execution.

    Every relation crossing a server boundary is recorded together with
    the profile describing its information content; the log is what the
    {!module:Audit} checks against the policy, and what benches measure
    (bytes and tuples actually moved). *)

open Relalg
open Authz

(** Why a message was sent — the protocol step of Figure 5 it
    implements, keyed by the join node. *)
type purpose =
  | Full_operand of { join : int }
      (** regular join: the non-master operand's result *)
  | Join_attributes of { join : int }
      (** semi-join step 2: the master's join-attribute projection *)
  | Semijoin_result of { join : int }
      (** semi-join step 4: the reduced operand going back *)
  | Matched_keys of { join : int }
      (** coordinator join: matching join-column values sent by the
          coordinator to the non-master operand *)
  | Proxy_operand of { join : int; side : [ `Left | `Right ] }
      (** third-party join: an operand shipped to the proxy *)

type message = {
  seq : int;  (** send order, from 0 *)
  sender : Server.t;
  receiver : Server.t;
  data : Relation.t;
  profile : Profile.t;
  purpose : purpose;
  note : string;  (** human-readable step, e.g. ["semi-join at n1"] *)
}

type t

val create : unit -> t

(** Record a transfer; returns the sent data unchanged so sends chain
    naturally inside expressions. *)
val send :
  t ->
  sender:Server.t ->
  receiver:Server.t ->
  profile:Profile.t ->
  purpose:purpose ->
  note:string ->
  Relation.t ->
  Relation.t

(** Messages belonging to one join node, in send order. *)
val at_join : t -> int -> message list

(** Messages in send order. *)
val messages : t -> message list

val message_count : t -> int
val total_tuples : t -> int
val total_bytes : t -> int

(** Bytes per (sender, receiver) pair, lexicographic order. *)
val traffic_matrix : t -> ((Server.t * Server.t) * int) list

val pp_message : message Fmt.t
val pp : t Fmt.t
