(** Distributed execution of a safely-assigned query plan.

    The engine runs a {!Relalg.Plan} under an executor assignment
    exactly as Figure 5 prescribes:

    - leaves are read at their storage server;
    - unary operations run at their operand's executor;
    - a regular join ships the non-master operand to the master;
    - a semi-join performs the five-step protocol: the master projects
      its join attributes, ships them to the slave, the slave joins
      them with its operand and ships the (reduced) result back, and
      the master completes with a natural join;
    - a third-party proxy join (footnote 3) receives both operands.

    Every transfer is logged to a {!Network.t} with the profile of the
    transmitted relation, recomputed from the operations actually
    performed — independently of the planner — so that {!Audit.run}
    cross-checks planning-time safety against runtime behaviour. *)

open Relalg

type outcome = {
  result : Relation.t;  (** the query answer *)
  location : Server.t;  (** server holding it (root master) *)
  network : Network.t;  (** everything that crossed a boundary *)
  node_rows : (int * int) list;
      (** cardinality of each node's result, by node id — consumed by
          {!Timing} *)
}

type error =
  | Structure of Planner.Safety.error
      (** the assignment violates Definition 4.1 *)
  | Missing_instance of string  (** no instance for a base relation *)

(** Alias of {!Planner.Assignment}, for the signature below. *)
module Assignment = Planner.Assignment

val pp_error : error Fmt.t

(** [execute catalog ~instances plan assignment] runs the plan.
    [instances] maps base-relation names to their stored instances.
    [third_party] (default [false]) accepts proxy joins. *)
val execute :
  ?third_party:bool ->
  Catalog.t ->
  instances:(string -> Relation.t option) ->
  Plan.t ->
  Assignment.t ->
  (outcome, error) result

(** Centralized reference evaluation of the same plan (no distribution,
    no authorization): the ground truth the distributed result must
    equal. @raise Invalid_argument on a missing instance. *)
val centralized :
  instances:(string -> Relation.t option) -> Plan.t -> Relation.t
