lib/distsim/network.mli: Authz Fmt Profile Relalg Relation Server
