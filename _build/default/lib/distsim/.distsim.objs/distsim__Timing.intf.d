lib/distsim/timing.mli: Engine Fmt Plan Planner Relalg Server
