lib/distsim/des.ml: Engine Float Fmt Hashtbl List Network Option Plan Planner Printf Relalg Relation Server String Timing
