lib/distsim/audit.ml: Attribute Authorization Authz Fmt List Network Policy Profile Relalg Relation Result
