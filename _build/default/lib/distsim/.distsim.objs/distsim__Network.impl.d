lib/distsim/network.ml: Authz Fmt Hashtbl List Logs Option Profile Relalg Relation Server
