lib/distsim/audit.mli: Attribute Authorization Authz Fmt Network Policy Relalg
