lib/distsim/des.mli: Engine Fmt Plan Planner Relalg Server Timing
