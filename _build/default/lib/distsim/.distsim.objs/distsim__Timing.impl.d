lib/distsim/timing.ml: Engine Float Fmt Int List Network Plan Planner Printf Relalg Relation Server
