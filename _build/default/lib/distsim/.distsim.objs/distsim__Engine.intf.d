lib/distsim/engine.mli: Catalog Fmt Network Plan Planner Relalg Relation Server
