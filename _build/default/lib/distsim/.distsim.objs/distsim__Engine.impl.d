lib/distsim/engine.ml: Algebra Attribute Authz Catalog Fmt Int Joinpath List Logs Network Plan Planner Predicate Printf Profile Relalg Relation Schema Server
