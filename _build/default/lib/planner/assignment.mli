(** Executor assignments — the function [λ_T] of Definition 4.1.

    Each plan node is mapped to a pair [\[master, slave\]]: the master
    executes the node's operation; for joins, a non-NULL slave
    cooperates in a semi-join (Figure 5). Leaves are assigned the server
    storing the relation; unary nodes their operand's server. *)

open Relalg

type executor = {
  master : Server.t;
  slave : Server.t option;  (** [None] is the paper's NULL *)
  coordinator : Server.t option;
      (** footnote 3's coordinator: a third party that matches the two
          operands' join columns without seeing either relation; the
          join's result still lands at [master] *)
}

val executor : ?slave:Server.t -> ?coordinator:Server.t -> Server.t -> executor
val pp_executor : executor Fmt.t

type t

val empty : t
val set : int -> executor -> t -> t

(** @raise Not_found for unassigned nodes. *)
val find : t -> int -> executor

val find_opt : t -> int -> executor option
val bindings : t -> (int * executor) list
val equal : t -> t -> bool

(** [λ_T(n) = \[S_H, S_N\]] listing, one node per line. *)
val pp : t Fmt.t
