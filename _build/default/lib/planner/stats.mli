(** Data statistics for cost estimation.

    {!Cost.uniform} prices plans with fixed cardinalities and
    selectivities; when instances are available, classical statistics
    do better: per-relation cardinalities and per-attribute distinct
    counts, with the textbook equi-join selectivity estimate

    {v sel(L.a = R.b) = 1 / max(distinct(a), distinct(b)) v}

    {!to_cost_model} plugs these into a {!Cost.model} (the model keeps
    a single global join selectivity, so the per-condition estimates
    are averaged over the conditions the statistics have seen — the
    plan-level knobs the optimizer and the exhaustive baseline use). *)

open Relalg

type t

(** Collect statistics for every catalogued relation with an instance
    (relations without instances are skipped and fall back to
    [default_card] at use sites). *)
val of_instances : Catalog.t -> (string -> Relation.t option) -> t

(** Rows of a relation; [None] when no instance was seen. *)
val cardinality : t -> string -> int option

(** Distinct values of an attribute; [None] when unseen. *)
val distinct : t -> Attribute.t -> int option

(** Textbook selectivity estimate for an equi-join condition (product
    over its attribute pairs); [None] when either side is unseen. *)
val join_selectivity : t -> Joinpath.Cond.t -> float option

(** Build a {!Cost.model}: cardinalities from the statistics
    ([default_card], default [1000.], for unseen relations); join
    selectivity averaged over [conds] (falling back to [1.0] when no
    estimate is available); selection selectivity 0.5; 8-byte
    attributes. *)
val to_cost_model :
  ?default_card:float -> conds:Joinpath.Cond.t list -> t -> Cost.model

val pp : t Fmt.t
