(** Compilation of an executor assignment into the per-server execution
    script — the sequence of local SQL statements and transfers each
    party runs.

    The paper argues its model "is certainly easier to integrate with
    the mechanisms and approaches that are used by current database
    servers" (Section 6); this module makes that concrete: every plan
    node becomes a temporary table at its executor, joins expand into
    the Figure-5 protocols, and the output is plain SQL over base
    relations and received temporaries — exactly what a federation of
    ordinary DBMSs would execute.

    Temporary names are [t<node>] (plus protocol-internal suffixes like
    [t1_keys]); a [Ship] step transfers a temporary between servers. *)

open Relalg

type step =
  | Local of {
      at : Server.t;
      defines : string;  (** temporary created by this statement *)
      sql : string;
    }
  | Ship of {
      src : Server.t;
      dst : Server.t;
      temp : string;
    }

type t = {
  steps : step list;  (** in execution order *)
  result : string;  (** temporary holding the query answer *)
  location : Server.t;
}

(** Compile; fails with the same structural errors as {!Safety.flows}.
    [third_party] as there. *)
val of_assignment :
  ?third_party:bool ->
  Catalog.t ->
  Plan.t ->
  Assignment.t ->
  (t, Safety.error) result

val pp_step : step Fmt.t
val pp : t Fmt.t
