open Relalg
module Int_map = Map.Make (Int)

type executor = {
  master : Server.t;
  slave : Server.t option;
  coordinator : Server.t option;
}

let executor ?slave ?coordinator master = { master; slave; coordinator }

let pp_executor ppf e =
  (match e.slave with
   | None -> Fmt.pf ppf "[%a, NULL]" Server.pp e.master
   | Some s -> Fmt.pf ppf "[%a, %a]" Server.pp e.master Server.pp s);
  match e.coordinator with
  | None -> ()
  | Some t -> Fmt.pf ppf " via %a" Server.pp t

type t = executor Int_map.t

let empty = Int_map.empty
let set = Int_map.add
let find t id = Int_map.find id t
let find_opt t id = Int_map.find_opt id t
let bindings = Int_map.bindings

let equal =
  Int_map.equal (fun a b ->
      Server.equal a.master b.master
      && Option.equal Server.equal a.slave b.slave
      && Option.equal Server.equal a.coordinator b.coordinator)

let pp ppf t =
  let pp_binding ppf (id, e) = Fmt.pf ppf "n%d: %a" id pp_executor e in
  Fmt.(list ~sep:(any "@\n") pp_binding) ppf (bindings t)
