open Relalg
open Authz

type option_ = {
  node : int;
  mode : Safe_planner.mode;
  master : Server.t;
  missing : Authorization.t list;
}

type proposal = {
  grants : Authorization.t list;
  assignment : Assignment.t;
  extended : Policy.t;
}

(* Turn a required view into the authorization granting it, when the
   view is expressible as a rule (Definition 3.1 constraints). *)
let grant_for (view : Profile.t) server =
  match
    Authorization.make ~attrs:(Profile.visible view) ~path:view.Profile.join
      server
  with
  | Ok a -> Some a
  | Error _ -> None

(* Missing grants for a set of (view, server) obligations; [None] when
   some obligation cannot be expressed as a rule. *)
let missing_grants policy obligations =
  List.fold_left
    (fun acc (view, server) ->
      match acc with
      | None -> None
      | Some grants ->
        if Policy.can_view policy view server then Some grants
        else
          (match grant_for view server with
           | Some g when not (List.exists (Authorization.equal g) grants) ->
             Some (grants @ [ g ])
           | Some _ -> Some grants
           | None -> None))
    (Some []) obligations

let attr_weight grants =
  List.fold_left
    (fun acc (a : Authorization.t) -> acc + Attribute.Set.cardinal a.attrs)
    0 grants

let explain catalog policy plan (failure : Safe_planner.failure) =
  ignore catalog;
  let node =
    match Plan.node plan failure.failed_at with
    | Some n -> n
    | None -> invalid_arg "Advisor.explain: failure node not in plan"
  in
  match node.Plan.op with
  | Plan.Leaf _ | Plan.Project _ | Plan.Select _ ->
    invalid_arg "Advisor.explain: planning can only fail at a join"
  | Plan.Join (cond, l, r) ->
    let info id =
      match
        List.find_opt
          (fun (i : Safe_planner.node_info) -> i.node = id)
          failure.info
      with
      | Some i -> i
      | None -> invalid_arg "Advisor.explain: child not visited"
    in
    let linfo = info l.Plan.id and rinfo = info r.Plan.id in
    let cond = Safety.oriented_cond cond l in
    let jl = Attribute.Set.of_list (Joinpath.Cond.left cond) in
    let jr = Attribute.Set.of_list (Joinpath.Cond.right cond) in
    let lp = linfo.profile and rp = rinfo.profile in
    let right_slave_view = Profile.project jl lp in
    let left_slave_view = Profile.project jr rp in
    let right_master_view = Profile.join cond lp (Profile.project jr rp) in
    let left_master_view = Profile.join cond (Profile.project jl lp) rp in
    let options =
      (* Regular joins: one obligation per master candidate. *)
      List.filter_map
        (fun (c : Safe_planner.candidate) ->
          Option.map
            (fun missing ->
              {
                node = node.Plan.id;
                mode = Safe_planner.Regular;
                master = c.server;
                missing;
              })
            (missing_grants policy [ (rp, c.server) ]))
        linfo.candidates
      @ List.filter_map
          (fun (c : Safe_planner.candidate) ->
            Option.map
              (fun missing ->
                {
                  node = node.Plan.id;
                  mode = Safe_planner.Regular;
                  master = c.server;
                  missing;
                })
              (missing_grants policy [ (lp, c.server) ]))
          rinfo.candidates
      (* Semi-joins: master + slave obligations, one option per pair. *)
      @ List.concat_map
          (fun (m : Safe_planner.candidate) ->
            List.filter_map
              (fun (s : Safe_planner.candidate) ->
                if Server.equal m.server s.server then None
                else
                  Option.map
                    (fun missing ->
                      {
                        node = node.Plan.id;
                        mode = Safe_planner.Semi;
                        master = m.server;
                        missing;
                      })
                    (missing_grants policy
                       [
                         (right_slave_view, s.server);
                         (left_master_view, m.server);
                       ]))
              rinfo.candidates)
          linfo.candidates
      @ List.concat_map
          (fun (m : Safe_planner.candidate) ->
            List.filter_map
              (fun (s : Safe_planner.candidate) ->
                if Server.equal m.server s.server then None
                else
                  Option.map
                    (fun missing ->
                      {
                        node = node.Plan.id;
                        mode = Safe_planner.Semi;
                        master = m.server;
                        missing;
                      })
                    (missing_grants policy
                       [
                         (left_slave_view, s.server);
                         (right_master_view, m.server);
                       ]))
              linfo.candidates)
          rinfo.candidates
    in
    List.sort
      (fun a b ->
        match Int.compare (List.length a.missing) (List.length b.missing) with
        | 0 -> Int.compare (attr_weight a.missing) (attr_weight b.missing)
        | c -> c)
      options

let advise catalog policy plan =
  match Safe_planner.plan catalog policy plan with
  | Ok _ -> None
  | Error failure ->
    (* Each repaired join stays repaired, so the failure point moves
       strictly up the tree: the join count bounds the iterations. *)
    let fuel = Plan.join_count plan + 1 in
    let rec repair policy acc failure fuel =
      if fuel = 0 then None
      else
        match explain catalog policy plan failure with
        | [] -> None
        | best :: _ ->
          let policy =
            List.fold_left (fun p g -> Policy.add g p) policy best.missing
          in
          let acc = acc @ best.missing in
          (match Safe_planner.plan catalog policy plan with
           | Ok { assignment; _ } ->
             Some { grants = acc; assignment; extended = policy }
           | Error failure -> repair policy acc failure (fuel - 1))
    in
    repair policy [] failure fuel

let pp_option ppf o =
  Fmt.pf ppf "@[<v 2>n%d as %s at %a, missing:@,%a@]" o.node
    (match o.mode with
     | Safe_planner.Local -> "local join"
     | Safe_planner.Regular -> "regular join"
     | Safe_planner.Semi -> "semi-join"
     | Safe_planner.Coordinated _ -> "coordinated join")
    Server.pp o.master
    Fmt.(list ~sep:(any "@,") Authorization.pp)
    o.missing

let pp_proposal ppf p =
  Fmt.pf ppf "@[<v 2>grant:@,%a@]"
    Fmt.(list ~sep:(any "@,") Authorization.pp)
    p.grants
