lib/planner/safety.mli: Assignment Authorization Authz Catalog Fmt Joinpath Plan Policy Profile Relalg Server
