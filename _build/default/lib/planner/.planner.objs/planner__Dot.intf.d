lib/planner/dot.mli: Assignment Catalog Plan Relalg
