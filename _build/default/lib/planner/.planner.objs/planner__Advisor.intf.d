lib/planner/advisor.mli: Assignment Authorization Authz Catalog Fmt Plan Policy Relalg Safe_planner Server
