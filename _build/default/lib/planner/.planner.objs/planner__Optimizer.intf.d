lib/planner/optimizer.mli: Assignment Authz Catalog Cost Plan Query Relalg Safe_planner
