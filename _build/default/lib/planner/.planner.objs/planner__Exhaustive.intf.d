lib/planner/exhaustive.mli: Assignment Authz Catalog Cost Plan Policy Relalg
