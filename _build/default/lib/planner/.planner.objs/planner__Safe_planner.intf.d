lib/planner/safe_planner.mli: Assignment Authz Catalog Fmt Plan Policy Profile Relalg Server Stdlib
