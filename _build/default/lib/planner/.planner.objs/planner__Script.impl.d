lib/planner/script.ml: Assignment Attribute Fmt Joinpath List Option Plan Predicate Printf Relalg Safety Schema Server String
