lib/planner/safe_planner.ml: Assignment Attribute Authz Catalog Fmt Hashtbl Int Joinpath List Option Plan Policy Predicate Profile Relalg Safety Schema Server
