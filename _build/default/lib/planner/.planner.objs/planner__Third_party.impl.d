lib/planner/third_party.ml: Assignment Fmt List Plan Relalg Safe_planner Server
