lib/planner/advisor.ml: Assignment Attribute Authorization Authz Fmt Int Joinpath List Option Plan Policy Profile Relalg Safe_planner Safety Server
