lib/planner/cost.mli: Assignment Catalog Plan Relalg Safety
