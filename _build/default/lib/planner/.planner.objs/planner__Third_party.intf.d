lib/planner/third_party.mli: Assignment Authz Catalog Fmt Plan Policy Relalg Server Stdlib
