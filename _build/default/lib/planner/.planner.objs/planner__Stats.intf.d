lib/planner/stats.mli: Attribute Catalog Cost Fmt Joinpath Relalg Relation
