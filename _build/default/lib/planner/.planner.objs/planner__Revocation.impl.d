lib/planner/revocation.ml: Authorization Authz Fmt Int List Policy Safe_planner Safety
