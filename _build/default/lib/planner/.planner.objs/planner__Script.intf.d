lib/planner/script.mli: Assignment Catalog Fmt Plan Relalg Safety Server
