lib/planner/exhaustive.ml: Assignment Attribute Authz Catalog Cost Fmt Fun Joinpath List Plan Policy Profile Relalg Safety Schema Seq Server
