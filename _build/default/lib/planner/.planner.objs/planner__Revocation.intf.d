lib/planner/revocation.mli: Assignment Authorization Authz Catalog Fmt Plan Policy Relalg
