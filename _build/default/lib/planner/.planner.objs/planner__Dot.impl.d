lib/planner/dot.ml: Array Assignment Attribute Authz Buffer Fmt Joinpath List Option Plan Predicate Printf Relalg Safety Schema Server String
