lib/planner/cost.ml: Attribute Authz Float List Plan Printf Relalg Safety Schema
