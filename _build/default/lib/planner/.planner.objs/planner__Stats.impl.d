lib/planner/stats.ml: Attribute Catalog Cost Float Fmt Joinpath List Map Relalg Relation Schema Set String Tuple Value
