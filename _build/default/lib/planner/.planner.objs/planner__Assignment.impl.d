lib/planner/assignment.ml: Fmt Int Map Option Relalg Server
