lib/planner/safety.ml: Assignment Attribute Authorization Authz Catalog Fmt Joinpath List Plan Policy Predicate Profile Relalg Result Schema Server
