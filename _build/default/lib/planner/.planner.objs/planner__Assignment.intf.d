lib/planner/assignment.mli: Fmt Relalg Server
