lib/planner/optimizer.ml: Assignment Attribute Cost Fmt Joinpath List Option Plan Query Relalg Safe_planner String
