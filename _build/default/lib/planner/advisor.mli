(** Policy advisor: explain infeasibility and propose minimal
    additional authorizations.

    When [Find_candidates] exits at a node (Definition 4.3 fails), an
    administrator wants to know {e which} release is missing and what
    the smallest policy change restoring feasibility would be. The
    advisor recomputes the Figure-5 views at the blocked join and:

    - {!explain} lists, per execution mode and candidate server, the
      exact view (profile) that would have to be authorized;
    - {!advise} greedily repairs the plan: at each blocked join it
      picks the option needing the fewest new rules (ties broken by
      the fewest released attributes), adds them, and re-plans, until
      the plan is feasible or no option exists.

    Proposed rules are genuine {!Authz.Authorization} values: what the
    advisor suggests is exactly what an administrator would write. *)

open Relalg
open Authz

(** One way to unblock a join: the mode, the servers involved and the
    missing grants ([] means already authorized — cannot happen for
    the blocked node itself). *)
type option_ = {
  node : int;
  mode : Safe_planner.mode;
  master : Server.t;
  missing : Authorization.t list;
}

(** Options for the blocked node of a failed plan, cheapest first.
    Empty when even new grants cannot help (no candidate executors in
    the children — impossible for well-formed plans). *)
val explain :
  Catalog.t -> Policy.t -> Plan.t -> Safe_planner.failure -> option_ list

type proposal = {
  grants : Authorization.t list;  (** all rules added, in order *)
  assignment : Assignment.t;  (** safe assignment under the extended policy *)
  extended : Policy.t;  (** the original policy plus [grants] *)
}

(** [advise catalog policy plan] — [None] if the plan is feasible
    already (nothing to do) or cannot be repaired. *)
val advise : Catalog.t -> Policy.t -> Plan.t -> proposal option

val pp_option : option_ Fmt.t
val pp_proposal : proposal Fmt.t
