(** Graphviz (DOT) rendering of plans and assignments.

    [dune exec bin/cisqp.exe -- plan --dot ...] emits a digraph with
    one node per plan operator; when an assignment is supplied, nodes
    are grouped per executor server (colour-coded clusters) and the
    data flows entailed by the assignment appear as labelled dashed
    edges — the picture version of {!Safety.flows}. *)

open Relalg

(** DOT source of the bare plan. *)
val plan_to_dot : Plan.t -> string

(** DOT source of the plan with its executor assignment and the
    resulting flows. [third_party] as in {!Safety.flows}.
    @raise Invalid_argument if the assignment does not fit the plan. *)
val assignment_to_dot :
  ?third_party:bool ->
  Catalog.t ->
  Plan.t ->
  Assignment.t ->
  string
