(** Two-step distributed query optimization (Section 5).

    The paper situates its algorithm inside the classical two-step
    optimizer \[12\]: first pick a good logical plan, then assign
    operations to servers. This module implements the first step on top
    of {!Safe_planner}: it enumerates alternative left-deep join orders
    of the FROM clause (every prefix connected through the query's join
    conditions), runs the Figure-6 algorithm on each, and keeps the
    cheapest {e feasible} combination under a {!Cost.model}.

    Because authorizations constrain who may see what, join order
    affects more than cost: an order can be infeasible while another
    one is safe — reordering {e recovers feasibility}, not just
    performance (experiment EXP-G). A condition is attached to the
    first position where all its relations are joined; orders that
    would turn a join equality into a post-hoc selection (changing the
    information profile) are skipped. *)

open Relalg

type outcome =
  | Feasible of Assignment.t * float  (** assignment and estimated cost *)
  | Infeasible of int  (** node at which the greedy planner gave up *)

type explored = {
  order : string list;  (** FROM relations, in the explored order *)
  plan : Plan.t;
  outcome : outcome;
}

type t = {
  best : explored option;  (** cheapest feasible order, if any *)
  explored : explored list;  (** everything tried, in exploration order *)
  truncated : bool;  (** hit [max_orders] before exhausting orders *)
}

(** [optimize model catalog policy query] explores up to [max_orders]
    (default [720]) join orders. [config] is passed through to the
    planner. The original order is always explored first, so
    [List.hd t.explored] reports the paper-default behaviour. *)
val optimize :
  ?max_orders:int ->
  ?config:Safe_planner.config ->
  Cost.model ->
  Catalog.t ->
  Authz.Policy.t ->
  Query.t ->
  t

(** Orders whose every prefix is connected (and condition-preserving),
    original order first. Exposed for tests. *)
val valid_orders : ?max_orders:int -> Query.t -> string list list

(** Rebuild the query with its FROM clause permuted to [order].
    @raise Invalid_argument if [order] is not a valid order of the
    query's relations. *)
val reorder : Catalog.t -> Query.t -> string list -> Query.t
