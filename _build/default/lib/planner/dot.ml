open Relalg

let escape s =
  String.concat ""
    (List.map
       (function
         | '"' -> "\\\""
         | '\\' -> "\\\\"
         | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let node_label (n : Plan.node) =
  match n.op with
  | Plan.Leaf schema -> Printf.sprintf "%s\\n%s" (Plan.label n) (Schema.name schema)
  | Plan.Project (attrs, _) ->
    Printf.sprintf "%s\\nπ %s" (Plan.label n)
      (escape (Fmt.str "%a" Attribute.Set.pp attrs))
  | Plan.Select (pred, _) ->
    Printf.sprintf "%s\\nσ %s" (Plan.label n)
      (escape (Fmt.str "%a" Predicate.pp pred))
  | Plan.Join (cond, _, _) ->
    Printf.sprintf "%s\\n⋈ %s" (Plan.label n)
      (escape (Fmt.str "%a" Joinpath.Cond.pp_sql cond))

let shape (n : Plan.node) =
  match n.op with
  | Plan.Leaf _ -> "box"
  | Plan.Join _ -> "diamond"
  | Plan.Project _ | Plan.Select _ -> "ellipse"

(* A fixed colour wheel for server clusters. *)
let palette =
  [| "#cfe2f3"; "#d9ead3"; "#fff2cc"; "#f4cccc"; "#d9d2e9"; "#fce5cd" |]

let plan_to_dot plan =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "digraph plan {\n  rankdir=BT;\n";
  List.iter
    (fun (n : Plan.node) ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\", shape=%s];\n" n.id
           (node_label n) (shape n)))
    (Plan.nodes plan);
  List.iter
    (fun (n : Plan.node) ->
      List.iter
        (fun (child : Plan.node) ->
          Buffer.add_string buf
            (Printf.sprintf "  n%d -> n%d;\n" child.Plan.id n.id))
        (Plan.children n))
    (Plan.nodes plan);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let assignment_to_dot ?third_party catalog plan assignment =
  let flows =
    match Safety.flows ?third_party catalog plan assignment with
    | Ok fs -> fs
    | Error e ->
      invalid_arg (Fmt.str "Dot.assignment_to_dot: %a" Safety.pp_error e)
  in
  (* Group plan nodes per executing server. *)
  let servers =
    List.sort_uniq Server.compare
      (List.concat_map
         (fun (n : Plan.node) ->
           let e = Assignment.find assignment n.id in
           e.Assignment.master
           :: (Option.to_list e.Assignment.slave
              @ Option.to_list e.Assignment.coordinator))
         (Plan.nodes plan))
  in
  let colour_of =
    let table =
      List.mapi
        (fun i s -> (s, palette.(i mod Array.length palette)))
        servers
    in
    fun s -> List.assoc s table
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph assignment {\n  rankdir=BT;\n  compound=true;\n";
  (* One cluster per server containing its nodes. *)
  List.iteri
    (fun i server ->
      Buffer.add_string buf
        (Printf.sprintf
           "  subgraph cluster_%d {\n    label=\"%s\";\n    style=filled;\n    color=\"%s\";\n"
           i
           (escape (Server.name server))
           (colour_of server));
      List.iter
        (fun (n : Plan.node) ->
          let e = Assignment.find assignment n.id in
          if Server.equal e.Assignment.master server then
            Buffer.add_string buf
              (Printf.sprintf "    n%d [label=\"%s\", shape=%s];\n" n.id
                 (node_label n) (shape n)))
        (Plan.nodes plan);
      Buffer.add_string buf "  }\n")
    servers;
  (* Tree edges. *)
  List.iter
    (fun (n : Plan.node) ->
      List.iter
        (fun (child : Plan.node) ->
          Buffer.add_string buf
            (Printf.sprintf "  n%d -> n%d;\n" child.Plan.id n.id))
        (Plan.children n))
    (Plan.nodes plan);
  (* Flow edges: dashed, from the sub-plan whose data moves to the join
     that consumes it, labelled sender→receiver with the profile. *)
  let source_of (f : Safety.flow) =
    match f.Safety.payload with
    | Safety.Full_result id | Safety.Join_attributes id -> id
    | Safety.Semijoin_result { slave_child; _ } -> slave_child
    | Safety.Matched_keys { side_child; _ } -> side_child
  in
  List.iter
    (fun (f : Safety.flow) ->
      Buffer.add_string buf
        (Printf.sprintf
           "  n%d -> n%d [style=dashed, color=red, label=\"%s→%s\\n%s\"];\n"
           (source_of f) f.Safety.at
           (escape (Server.name f.Safety.sender))
           (escape (Server.name f.Safety.receiver))
           (escape (Fmt.str "%a" Authz.Profile.pp f.Safety.profile))))
    flows;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
