(** Communication cost model.

    The paper argues (Section 4) that semi-joins "minimize
    communication, which also benefits security". This module estimates
    the bytes moved by an assignment so that baselines can be compared
    and the exhaustive planner can pick a minimum-cost safe assignment.
    The distributed simulator measures the {e actual} bytes; benches
    report both. *)

open Relalg

type model = {
  card : string -> float;  (** base-relation cardinality, by name *)
  join_selectivity : float;
      (** |L ⋈ R| ≈ selectivity × max(|L|, |R|) — the standard
          foreign-key-join approximation *)
  select_selectivity : float;  (** fraction surviving a selection *)
  attr_bytes : float;  (** average width of one attribute value *)
}

(** [uniform ~card] — every base relation has [card] rows, selectivity
    1.0 for joins (key–foreign-key), 0.5 for selections, 8-byte
    attributes. *)
val uniform : card:float -> model

(** Estimated rows produced by the sub-plan rooted at the node. *)
val node_rows : model -> Plan.node -> float

(** Estimated bytes of one flow (its payload sized with the model). *)
val flow_bytes : model -> Plan.t -> Safety.flow -> float

(** Total estimated bytes moved by the assignment: the sum over the
    flows derived by {!Safety.flows}. Structural errors yield
    [infinity] (an unusable assignment never wins a comparison). *)
val assignment_cost :
  ?third_party:bool ->
  model ->
  Catalog.t ->
  Plan.t ->
  Assignment.t ->
  float
