open Relalg

type step =
  | Local of {
      at : Server.t;
      defines : string;
      sql : string;
    }
  | Ship of {
      src : Server.t;
      dst : Server.t;
      temp : string;
    }

type t = {
  steps : step list;
  result : string;
  location : Server.t;
}

let columns node =
  Plan.output node |> Attribute.Set.elements |> List.map Attribute.name
  |> String.concat ", "

let attr_list attrs =
  attrs |> List.map Attribute.name |> String.concat ", "

let on_clause cond = Fmt.str "%a" Joinpath.Cond.pp_sql cond

let of_assignment ?(third_party = false) catalog plan assignment =
  (* Structural validity first: reuse the safety checker's derivation
     (we only need its error cases; the flows themselves are implicit
     in the generated Ship steps). *)
  match Safety.flows ~third_party catalog plan assignment with
  | Error e -> Error e
  | Ok _ ->
    let steps = ref [] in
    let emit s = steps := s :: !steps in
    let master id =
      (Assignment.find assignment id).Assignment.master
    in
    let temp (n : Plan.node) = Printf.sprintf "t%d" n.id in
    let rec go (n : Plan.node) : unit =
      match n.op with
      | Plan.Leaf schema ->
        emit
          (Local
             {
               at = master n.id;
               defines = temp n;
               sql =
                 Printf.sprintf "CREATE TEMP TABLE %s AS SELECT %s FROM %s"
                   (temp n) (columns n) (Schema.name schema);
             })
      | Plan.Project (attrs, c) ->
        go c;
        emit
          (Local
             {
               at = master n.id;
               defines = temp n;
               sql =
                 Printf.sprintf "CREATE TEMP TABLE %s AS SELECT %s FROM %s"
                   (temp n)
                   (attr_list (Attribute.Set.elements attrs))
                   (temp c);
             })
      | Plan.Select (pred, c) ->
        go c;
        emit
          (Local
             {
               at = master n.id;
               defines = temp n;
               sql =
                 Fmt.str "CREATE TEMP TABLE %s AS SELECT %s FROM %s WHERE %a"
                   (temp n) (columns c) (temp c) Predicate.pp pred;
             })
      | Plan.Join (cond, l, r) ->
        go l;
        go r;
        let cond = Safety.oriented_cond cond l in
        let m = master n.id in
        let l_server = master l.Plan.id and r_server = master r.Plan.id in
        let e = Assignment.find assignment n.id in
        let join_sql ~into ~left_t ~right_t =
          Printf.sprintf
            "CREATE TEMP TABLE %s AS SELECT %s FROM %s JOIN %s ON %s" into
            (columns n) left_t right_t (on_clause cond)
        in
        let regular ~master_is_left =
          let other_t, other_server =
            if master_is_left then (temp r, r_server) else (temp l, l_server)
          in
          if not (Server.equal other_server m) then
            emit (Ship { src = other_server; dst = m; temp = other_t });
          let left_t, right_t =
            if master_is_left then (temp l, other_t) else (other_t, temp r)
          in
          emit (Local { at = m; defines = temp n; sql = join_sql ~into:(temp n) ~left_t ~right_t })
        in
        let semi ~slave ~master_is_left =
          let mc, oc = if master_is_left then (l, r) else (r, l) in
          let mj =
            if master_is_left then Joinpath.Cond.left cond
            else Joinpath.Cond.right cond
          in
          let keys = temp n ^ "_keys" and back = temp n ^ "_semi" in
          emit
            (Local
               {
                 at = m;
                 defines = keys;
                 sql =
                   Printf.sprintf
                     "CREATE TEMP TABLE %s AS SELECT DISTINCT %s FROM %s" keys
                     (attr_list mj) (temp mc);
               });
          emit (Ship { src = m; dst = slave; temp = keys });
          emit
            (Local
               {
                 at = slave;
                 defines = back;
                 sql =
                   Printf.sprintf
                     "CREATE TEMP TABLE %s AS SELECT %s FROM %s JOIN %s ON %s"
                     back
                     (attr_list mj ^ ", " ^ columns oc)
                     (temp oc) keys (on_clause cond);
               });
          emit (Ship { src = slave; dst = m; temp = back });
          emit
            (Local
               {
                 at = m;
                 defines = temp n;
                 sql =
                   Printf.sprintf
                     "CREATE TEMP TABLE %s AS SELECT %s FROM %s NATURAL JOIN %s"
                     (temp n) (columns n) (temp mc) back;
               })
        in
        let coordinated ~t ~slave ~master_is_left =
          let mc, oc = if master_is_left then (l, r) else (r, l) in
          let mj, oj =
            if master_is_left then
              (Joinpath.Cond.left cond, Joinpath.Cond.right cond)
            else (Joinpath.Cond.right cond, Joinpath.Cond.left cond)
          in
          let mkeys = temp n ^ "_mkeys"
          and okeys = temp n ^ "_okeys"
          and matched = temp n ^ "_matched"
          and reduced = temp n ^ "_reduced" in
          emit
            (Local
               {
                 at = m;
                 defines = mkeys;
                 sql =
                   Printf.sprintf
                     "CREATE TEMP TABLE %s AS SELECT DISTINCT %s FROM %s"
                     mkeys (attr_list mj) (temp mc);
               });
          emit (Ship { src = m; dst = t; temp = mkeys });
          emit
            (Local
               {
                 at = slave;
                 defines = okeys;
                 sql =
                   Printf.sprintf
                     "CREATE TEMP TABLE %s AS SELECT DISTINCT %s FROM %s"
                     okeys (attr_list oj) (temp oc);
               });
          emit (Ship { src = slave; dst = t; temp = okeys });
          emit
            (Local
               {
                 at = t;
                 defines = matched;
                 sql =
                   Printf.sprintf
                     "CREATE TEMP TABLE %s AS SELECT %s FROM %s JOIN %s ON %s"
                     matched (attr_list oj) mkeys okeys (on_clause cond);
               });
          emit (Ship { src = t; dst = slave; temp = matched });
          emit
            (Local
               {
                 at = slave;
                 defines = reduced;
                 sql =
                   Printf.sprintf
                     "CREATE TEMP TABLE %s AS SELECT %s FROM %s NATURAL JOIN %s"
                     reduced (columns oc) (temp oc) matched;
               });
          emit (Ship { src = slave; dst = m; temp = reduced });
          let left_t, right_t =
            if master_is_left then (temp mc, reduced) else (reduced, temp mc)
          in
          emit
            (Local
               { at = m; defines = temp n; sql = join_sql ~into:(temp n) ~left_t ~right_t })
        in
        (match e.Assignment.coordinator with
         | Some t ->
           let master_is_left = Server.equal m l_server in
           let slave = Option.get e.Assignment.slave in
           coordinated ~t ~slave ~master_is_left
         | None ->
           if Server.equal l_server r_server && Server.equal m l_server then
             emit
               (Local
                  {
                    at = m;
                    defines = temp n;
                    sql = join_sql ~into:(temp n) ~left_t:(temp l) ~right_t:(temp r);
                  })
           else if Server.equal m l_server then (
             match e.Assignment.slave with
             | None -> regular ~master_is_left:true
             | Some slave -> semi ~slave ~master_is_left:true)
           else if Server.equal m r_server then (
             match e.Assignment.slave with
             | None -> regular ~master_is_left:false
             | Some slave -> semi ~slave ~master_is_left:false)
           else begin
             (* Third-party proxy: both operands travel. *)
             emit (Ship { src = l_server; dst = m; temp = temp l });
             emit (Ship { src = r_server; dst = m; temp = temp r });
             emit
               (Local
                  {
                    at = m;
                    defines = temp n;
                    sql = join_sql ~into:(temp n) ~left_t:(temp l) ~right_t:(temp r);
                  })
           end)
    in
    let root = Plan.root plan in
    go root;
    Ok
      {
        steps = List.rev !steps;
        result = temp root;
        location = master root.Plan.id;
      }

let pp_step ppf = function
  | Local { at; sql; _ } -> Fmt.pf ppf "%a: %s" Server.pp at sql
  | Ship { src; dst; temp } ->
    Fmt.pf ppf "%a: SEND %s TO %a" Server.pp src temp Server.pp dst

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@,-- result in %s at %a@]"
    Fmt.(list ~sep:(any "@,") pp_step)
    t.steps t.result Server.pp t.location
