open Relalg

type outcome =
  | Feasible of Assignment.t * float
  | Infeasible of int

type explored = {
  order : string list;
  plan : Plan.t;
  outcome : outcome;
}

type t = {
  best : explored option;
  explored : explored list;
  truncated : bool;
}

let relations_of_cond cond =
  Joinpath.Cond.attributes cond
  |> Attribute.Set.elements
  |> List.map Attribute.relation
  |> List.sort_uniq String.compare

let conds_of (q : Query.t) = List.map snd q.joins

(* A condition is attached to the first position where all its
   relations are present. The attachment is legal only if every pair
   of the condition crosses the boundary between the prefix and the
   relation just added — otherwise an equality would degenerate into a
   post-join selection and change the profile. *)
let cond_status cond ~prefix ~fresh =
  let covered =
    List.for_all
      (fun rel -> rel = fresh || List.mem rel prefix)
      (relations_of_cond cond)
  in
  if not covered then `Pending
  else if not (List.mem fresh (relations_of_cond cond)) then `Already
  else
    let crosses l r =
      let lr = Attribute.relation l and rr = Attribute.relation r in
      (lr = fresh) <> (rr = fresh)
    in
    if List.for_all2 crosses (Joinpath.Cond.left cond) (Joinpath.Cond.right cond)
    then `Attach
    else `Illegal

(* Merge the conditions attached at one step into a single equi-join
   condition, oriented with the fresh relation's attributes on the
   right. *)
let merge_step_conds conds ~fresh =
  let pairs =
    List.concat_map
      (fun cond ->
        List.map2
          (fun l r ->
            if Attribute.relation r = fresh then (l, r) else (r, l))
          (Joinpath.Cond.left cond) (Joinpath.Cond.right cond))
      conds
  in
  Joinpath.Cond.make ~left:(List.map fst pairs) ~right:(List.map snd pairs)

(* Enumerate orders by DFS. Each extension must attach at least one
   condition (connectivity) and may not make any condition illegal. *)
let valid_orders ?(max_orders = 720) (q : Query.t) =
  let all = Query.relations q in
  let conds = conds_of q in
  let original = all in
  let results = ref [] and count = ref 0 and truncated = ref false in
  let emit order =
    if order <> original then
      if !count < max_orders then begin
        incr count;
        results := order :: !results
      end
      else truncated := true
  in
  let rec extend prefix_rev remaining used =
    if !count >= max_orders then truncated := true
    else if remaining = [] then emit (List.rev prefix_rev)
    else
      List.iter
        (fun fresh ->
          let prefix = List.rev prefix_rev in
          let statuses =
            List.filter_map
              (fun cond ->
                if List.memq cond used then None
                else Some (cond, cond_status cond ~prefix ~fresh))
              conds
          in
          let illegal =
            List.exists (fun (_, s) -> s = `Illegal) statuses
          in
          let attached =
            List.filter_map
              (fun (c, s) -> if s = `Attach then Some c else None)
              statuses
          in
          if (not illegal) && attached <> [] then
            extend (fresh :: prefix_rev)
              (List.filter (fun r -> r <> fresh) remaining)
              (attached @ used))
        remaining
  in
  (match all with
   | [] -> ()
   | [ _ ] -> ()
   | _ ->
     List.iter
       (fun base ->
         extend [ base ] (List.filter (fun r -> r <> base) all) [])
       all);
  let alternatives = List.rev !results in
  ignore !truncated;
  original :: alternatives

(* Was enumeration truncated? Re-derivable, but cheaper to recompute
   alongside; kept simple by re-running the bound check. *)
let orders_with_truncation ?max_orders q =
  let orders = valid_orders ?max_orders q in
  let bound = Option.value ~default:720 max_orders in
  (orders, List.length orders > bound)

let reorder catalog (q : Query.t) order =
  let all = Query.relations q in
  if List.sort compare order <> List.sort compare all then
    invalid_arg "Optimizer.reorder: not a permutation of the FROM clause";
  match order with
  | [] -> invalid_arg "Optimizer.reorder: empty order"
  | base :: rest ->
    let conds = conds_of q in
    let joins, _, _ =
      List.fold_left
        (fun (joins, prefix, used) fresh ->
          let statuses =
            List.filter_map
              (fun cond ->
                if List.memq cond used then None
                else Some (cond, cond_status cond ~prefix ~fresh))
              conds
          in
          (match List.find_opt (fun (_, s) -> s = `Illegal) statuses with
           | Some (cond, _) ->
             invalid_arg
               (Fmt.str
                  "Optimizer.reorder: condition %a does not cross at %s"
                  Joinpath.Cond.pp cond fresh)
           | None -> ());
          let attached =
            List.filter_map
              (fun (c, s) -> if s = `Attach then Some c else None)
              statuses
          in
          if attached = [] then
            invalid_arg
              (Fmt.str "Optimizer.reorder: %s does not connect to the prefix"
                 fresh);
          ( joins @ [ (fresh, merge_step_conds attached ~fresh) ],
            fresh :: prefix,
            attached @ used ))
        ([], [ base ], []) rest
    in
    (match
       Query.make catalog ~select:q.select ~base ~joins ~where:q.where
     with
     | Ok q' -> q'
     | Error e ->
       invalid_arg (Fmt.str "Optimizer.reorder: %a" Query.pp_error e))

let optimize ?max_orders ?config model catalog policy query =
  let orders, truncated = orders_with_truncation ?max_orders query in
  let explored =
    List.map
      (fun order ->
        let q = if order = Query.relations query then query else reorder catalog query order in
        let plan = Query.to_plan q in
        let outcome =
          match Safe_planner.plan ?config catalog policy plan with
          | Ok { assignment; _ } ->
            Feasible (assignment, Cost.assignment_cost model catalog plan assignment)
          | Error f -> Infeasible f.Safe_planner.failed_at
        in
        { order; plan; outcome })
      orders
  in
  let best =
    List.fold_left
      (fun best e ->
        match e.outcome, best with
        | Feasible (_, c), Some { outcome = Feasible (_, c'); _ } when c >= c'
          ->
          best
        | Feasible _, _ -> Some e
        | Infeasible _, _ -> best)
      None explored
  in
  { best; explored; truncated }
