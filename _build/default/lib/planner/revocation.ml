open Authz

let support catalog policy plan assignment =
  match Safety.check catalog policy plan assignment with
  | Error (`Structure e) -> Error (Fmt.str "%a" Safety.pp_error e)
  | Error (`Violations _) -> Error "assignment is not safe"
  | Ok flows ->
    let rules =
      List.filter_map
        (fun (f : Safety.flow) ->
          Policy.authorizing_rule policy f.profile f.receiver)
        flows
    in
    Ok (List.sort_uniq Authorization.compare rules)

let load_bearing catalog policy plan =
  if not (Safe_planner.feasible catalog policy plan) then []
  else
    List.filter
      (fun rule ->
        not
          (Safe_planner.feasible catalog (Policy.remove rule policy) plan))
      (Policy.authorizations policy)

type impact = {
  rule : Authorization.t;
  total : int;
  broken : int;
}

let impact catalog policy plans =
  let feasible_plans =
    List.filter (fun p -> Safe_planner.feasible catalog policy p) plans
  in
  let total = List.length feasible_plans in
  Policy.authorizations policy
  |> List.map (fun rule ->
         let without = Policy.remove rule policy in
         let broken =
           List.length
             (List.filter
                (fun p -> not (Safe_planner.feasible catalog without p))
                feasible_plans)
         in
         { rule; total; broken })
  |> List.sort (fun a b ->
         match Int.compare b.broken a.broken with
         | 0 -> Authorization.compare a.rule b.rule
         | c -> c)

let pp_impact ppf i =
  Fmt.pf ppf "%a breaks %d/%d plans" Authorization.pp i.rule i.broken i.total
