open Relalg
module String_map = Map.Make (String)

module Value_set = Set.Make (Value)

type t = {
  cards : int String_map.t;  (* relation name -> rows *)
  distincts : int Attribute.Map.t;
}

let of_instances catalog instances =
  List.fold_left
    (fun acc schema ->
      match instances (Schema.name schema) with
      | None -> acc
      | Some rel ->
        let cards =
          String_map.add (Schema.name schema) (Relation.cardinality rel)
            acc.cards
        in
        let distincts =
          List.fold_left
            (fun distincts attr ->
              let values =
                List.fold_left
                  (fun set tuple -> Value_set.add (Tuple.find tuple attr) set)
                  Value_set.empty (Relation.tuples rel)
              in
              Attribute.Map.add attr (Value_set.cardinal values) distincts)
            acc.distincts (Schema.attributes schema)
        in
        { cards; distincts })
    { cards = String_map.empty; distincts = Attribute.Map.empty }
    (Catalog.schemas catalog)

let cardinality t name = String_map.find_opt name t.cards
let distinct t attr = Attribute.Map.find_opt attr t.distincts

let join_selectivity t cond =
  let pair_sel l r =
    match (distinct t l, distinct t r) with
    | Some dl, Some dr when dl > 0 && dr > 0 ->
      Some (1.0 /. float_of_int (max dl dr))
    | _ -> None
  in
  List.fold_left2
    (fun acc l r ->
      match (acc, pair_sel l r) with
      | Some s, Some p -> Some (s *. p)
      | _ -> None)
    (Some 1.0) (Joinpath.Cond.left cond) (Joinpath.Cond.right cond)

let to_cost_model ?(default_card = 1000.0) ~conds t =
  let sels = List.filter_map (join_selectivity t) conds in
  let join_selectivity =
    match sels with
    | [] -> 1.0
    | _ ->
      (* Average of the per-condition estimates, scaled to the model's
         convention: |L ⋈ R| ≈ sel × max(|L|, |R|), i.e. the estimate
         sel(cond) × |L| × |R| / max = sel(cond) × min. We approximate
         min ≈ mean distinct-side cardinality by folding the
         per-condition sel × mean-card into one factor. Keeping it
         simple and bounded: mean of sel(cond) × default_card, clamped
         to [0.01, 1]. *)
      let mean = List.fold_left ( +. ) 0.0 sels /. float_of_int (List.length sels) in
      Float.min 1.0 (Float.max 0.01 (mean *. default_card /. 10.0))
  in
  {
    Cost.card =
      (fun name ->
        match cardinality t name with
        | Some c -> float_of_int c
        | None -> default_card);
    join_selectivity;
    select_selectivity = 0.5;
    attr_bytes = 8.0;
  }

let pp ppf t =
  let pp_card ppf (name, c) = Fmt.pf ppf "%s: %d rows" name c in
  let pp_distinct ppf (a, d) =
    Fmt.pf ppf "%a: %d distinct" Attribute.pp_qualified a d
  in
  Fmt.pf ppf "@[<v>%a@,%a@]"
    Fmt.(list ~sep:(any "@,") pp_card)
    (String_map.bindings t.cards)
    Fmt.(list ~sep:(any "@,") pp_distinct)
    (Attribute.Map.bindings t.distincts)
