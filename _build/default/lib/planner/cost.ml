open Relalg

type model = {
  card : string -> float;
  join_selectivity : float;
  select_selectivity : float;
  attr_bytes : float;
}

let uniform ~card =
  {
    card = (fun _ -> card);
    join_selectivity = 1.0;
    select_selectivity = 0.5;
    attr_bytes = 8.0;
  }

let rec node_rows model (n : Plan.node) =
  match n.op with
  | Plan.Leaf schema -> model.card (Schema.name schema)
  | Plan.Project (_, c) -> node_rows model c
  | Plan.Select (_, c) -> model.select_selectivity *. node_rows model c
  | Plan.Join (_, l, r) ->
    model.join_selectivity
    *. Float.max (node_rows model l) (node_rows model r)

let width attrs = float_of_int (Attribute.Set.cardinal attrs)

let flow_bytes model plan (flow : Safety.flow) =
  let node id =
    match Plan.node plan id with
    | Some n -> n
    | None -> invalid_arg (Printf.sprintf "Cost.flow_bytes: unknown node n%d" id)
  in
  let bytes rows attrs = rows *. width attrs *. model.attr_bytes in
  match flow.payload with
  | Safety.Full_result id ->
    let n = node id in
    bytes (node_rows model n) (Plan.output n)
  | Safety.Join_attributes id ->
    (* π_J of the master child: at most its rows, J attributes wide
       (the profile of the flow carries exactly J in pi). *)
    let n = node id in
    bytes (node_rows model n) flow.profile.Authz.Profile.pi
  | Safety.Matched_keys { node = id; side_child } ->
    (* Distinct matching key values: bounded like the semi-join answer,
       but only join-columns wide. *)
    let rows =
      Float.min (node_rows model (node id)) (node_rows model (node side_child))
    in
    bytes rows flow.profile.Authz.Profile.pi
  | Safety.Semijoin_result { node = id; slave_child } ->
    (* The tuples of the slave's operand that participate in the join:
       bounded by the slave operand and by the join result. *)
    let rows =
      Float.min (node_rows model (node id)) (node_rows model (node slave_child))
    in
    bytes rows flow.profile.Authz.Profile.pi

let assignment_cost ?third_party model catalog plan assignment =
  match Safety.flows ?third_party catalog plan assignment with
  | Error _ -> infinity
  | Ok flows ->
    List.fold_left (fun acc f -> acc +. flow_bytes model plan f) 0.0 flows
