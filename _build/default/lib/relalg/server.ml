type t = string

let make name =
  if name = "" then invalid_arg "Server.make: empty server name";
  name

let name t = t
let compare = String.compare
let equal = String.equal
let pp = Fmt.string
let to_string t = t

module Set = struct
  include Set.Make (String)

  let pp ppf s =
    Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ", ") string) (elements s)
end

module Map = Map.Make (String)
