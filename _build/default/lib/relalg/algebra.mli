(** Relational algebra expressions — the operator trees of
    [π_A(σ_C(R1 ⋈ ... ⋈ Rn+1))] queries (Section 2).

    An expression is the {e logical} side of a query tree plan; the
    numbered tree handed to the planner is {!module:Plan}. *)

type t =
  | Relation of Schema.t
  | Project of Attribute.Set.t * t
  | Select of Predicate.t * t
  | Join of Joinpath.Cond.t * t * t

type error =
  | Projection_out_of_scope of Attribute.Set.t
  | Selection_out_of_scope of Attribute.Set.t
  | Join_attributes_misplaced of Joinpath.Cond.t
  | Overlapping_operands of Attribute.Set.t

val pp_error : error Fmt.t

(** Output attributes of the expression (its header). *)
val output : t -> Attribute.Set.t

(** Names of base relations appearing as leaves, leftmost first. *)
val relations : t -> string list

(** Structural checks: projections/selections within scope, each join
    condition sided correctly (its left attributes produced by the left
    operand, right by the right), operands attribute-disjoint. *)
val validate : t -> (unit, error) result

(** [eval ~lookup e] evaluates [e] bottom-up on the instances provided
    by [lookup] (one call per leaf). This is the centralized reference
    semantics that the distributed engine is tested against.
    @raise Invalid_argument on expressions that do not {!validate}. *)
val eval : lookup:(Schema.t -> Relation.t) -> t -> Relation.t

(** Number of [Join] nodes. *)
val join_count : t -> int

(** Number of nodes. *)
val size : t -> int

(** Multi-line indented tree rendering. *)
val pp : t Fmt.t

val to_string : t -> string
