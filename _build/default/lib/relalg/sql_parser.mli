(** Parser for the paper's query fragment:

    {v
    SELECT a, b, ... | *
    FROM R [JOIN S ON x = y [AND u = v ...]] ...
    [WHERE condition]
    v}

    Conditions are boolean combinations ([AND], [OR], [NOT],
    parentheses) of comparisons between an attribute and a literal or
    another attribute. Attribute names may be bare (the paper's
    convention — names are globally unique) or dotted
    ([Insurance.Holder]). Keywords are case-insensitive. *)

type error =
  | Syntax of { offset : int; message : string }
  | Semantics of Query.error

val pp_error : error Fmt.t

(** Parse and resolve a query against a catalog. *)
val parse : Catalog.t -> string -> (Query.t, error) result

(** [parse_exn] raises [Invalid_argument] with a rendered error. *)
val parse_exn : Catalog.t -> string -> Query.t
