lib/relalg/attribute.mli: Fmt Map Set
