lib/relalg/schema.mli: Attribute Fmt
