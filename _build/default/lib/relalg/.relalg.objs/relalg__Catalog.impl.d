lib/relalg/catalog.ml: Attribute Fmt List Map Schema Server String
