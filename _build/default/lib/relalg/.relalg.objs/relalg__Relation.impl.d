lib/relalg/relation.ml: Attribute Fmt Joinpath List Map Option Predicate Schema Set Tuple Value
