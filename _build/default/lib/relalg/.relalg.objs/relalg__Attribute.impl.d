lib/relalg/attribute.ml: Fmt List Map Set String
