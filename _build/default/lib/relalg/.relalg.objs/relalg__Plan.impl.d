lib/relalg/plan.ml: Algebra Attribute Fmt Int Joinpath List Predicate Printf Queue Schema
