lib/relalg/tuple.ml: Attribute Fmt List Value
