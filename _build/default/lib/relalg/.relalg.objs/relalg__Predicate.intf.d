lib/relalg/predicate.mli: Attribute Fmt Value
