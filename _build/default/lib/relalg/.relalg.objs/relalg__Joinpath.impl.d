lib/relalg/joinpath.ml: Attribute Fmt List Set String
