lib/relalg/relation.mli: Attribute Fmt Joinpath Predicate Schema Tuple Value
