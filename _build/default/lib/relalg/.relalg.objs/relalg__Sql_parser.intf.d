lib/relalg/sql_parser.mli: Catalog Fmt Query
