lib/relalg/joinpath.mli: Attribute Fmt
