lib/relalg/server.mli: Fmt Map Set
