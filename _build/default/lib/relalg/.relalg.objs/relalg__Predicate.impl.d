lib/relalg/predicate.ml: Attribute Fmt List Value
