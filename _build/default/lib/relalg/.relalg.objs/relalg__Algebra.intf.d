lib/relalg/algebra.mli: Attribute Fmt Joinpath Predicate Relation Schema
