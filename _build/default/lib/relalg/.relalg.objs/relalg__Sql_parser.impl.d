lib/relalg/sql_parser.ml: Catalog Fmt Joinpath List Predicate Printf Query Schema String Value
