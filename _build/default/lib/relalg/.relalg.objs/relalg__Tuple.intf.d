lib/relalg/tuple.mli: Attribute Fmt Value
