lib/relalg/plan.mli: Algebra Attribute Fmt Joinpath Predicate Schema
