lib/relalg/query.ml: Algebra Attribute Catalog Fmt Joinpath List Plan Predicate Result Schema
