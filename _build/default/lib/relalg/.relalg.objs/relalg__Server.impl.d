lib/relalg/server.ml: Fmt Map Set String
