lib/relalg/query.mli: Algebra Attribute Catalog Fmt Joinpath Plan Predicate Schema
