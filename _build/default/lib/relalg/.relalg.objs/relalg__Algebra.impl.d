lib/relalg/algebra.ml: Attribute Fmt Joinpath List Predicate Relation Result Schema
