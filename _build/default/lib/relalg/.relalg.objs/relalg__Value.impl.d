lib/relalg/value.ml: Bool Float Fmt Hashtbl Int String
