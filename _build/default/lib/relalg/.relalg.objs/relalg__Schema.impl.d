lib/relalg/schema.ml: Attribute Fmt List Printf String
