lib/relalg/catalog.mli: Attribute Fmt Schema Server
