type t = Value.t Attribute.Map.t

let empty = Attribute.Map.empty

let of_list bindings =
  List.fold_left (fun m (a, v) -> Attribute.Map.add a v m) empty bindings

let bindings = Attribute.Map.bindings
let add = Attribute.Map.add
let find t a = Attribute.Map.find a t
let find_opt t a = Attribute.Map.find_opt a t
let mem t a = Attribute.Map.mem a t

let attributes t =
  Attribute.Map.fold (fun a _ acc -> Attribute.Set.add a acc) t
    Attribute.Set.empty

let project attrs t =
  Attribute.Map.filter (fun a _ -> Attribute.Set.mem a attrs) t

let merge a b =
  Attribute.Map.union
    (fun attr va vb ->
      if Value.equal va vb then Some va
      else
        invalid_arg
          (Fmt.str "Tuple.merge: conflicting values for %a: %a vs %a"
             Attribute.pp_qualified attr Value.pp va Value.pp vb))
    a b

let values_of t attrs = List.map (find t) attrs

let byte_width t =
  Attribute.Map.fold (fun _ v acc -> acc + Value.byte_width v) t 0

let compare = Attribute.Map.compare Value.compare
let equal a b = compare a b = 0

let pp ppf t =
  let pp_binding ppf (a, v) = Fmt.pf ppf "%a=%a" Attribute.pp a Value.pp v in
  Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any ", ") pp_binding) (bindings t)

let to_string = Fmt.to_to_string pp
