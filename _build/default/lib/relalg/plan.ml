type node = {
  id : int;
  op : op;
}

and op =
  | Leaf of Schema.t
  | Project of Attribute.Set.t * node
  | Select of Predicate.t * node
  | Join of Joinpath.Cond.t * node * node

type t = {
  root : node;
  all : node list;  (* by increasing id *)
}

(* Breadth-first numbering: nodes are rebuilt bottom-up after ids have
   been assigned level by level, matching the n0..n6 labels of the
   paper's Figures 2 and 7. *)
let of_algebra expr =
  (match Algebra.validate expr with
   | Ok () -> ()
   | Error err -> invalid_arg (Fmt.str "Plan.of_algebra: %a" Algebra.pp_error err));
  (* First pass: assign ids breadth-first over the algebra tree. *)
  let ids : (Algebra.t * int) list ref = ref [] in
  let queue = Queue.create () in
  Queue.add expr queue;
  let next = ref 0 in
  while not (Queue.is_empty queue) do
    let e = Queue.pop queue in
    ids := (e, !next) :: !ids;
    incr next;
    (match e with
     | Algebra.Relation _ -> ()
     | Algebra.Project (_, child) | Algebra.Select (_, child) ->
       Queue.add child queue
     | Algebra.Join (_, l, r) ->
       Queue.add l queue;
       Queue.add r queue)
  done;
  let id_of e =
    (* Physical identity distinguishes structurally equal sub-trees. *)
    let rec find = function
      | (e', id) :: rest -> if e' == e then id else find rest
      | [] -> assert false
    in
    find !ids
  in
  let rec build e =
    let id = id_of e in
    match e with
    | Algebra.Relation schema -> { id; op = Leaf schema }
    | Algebra.Project (attrs, child) ->
      { id; op = Project (attrs, build child) }
    | Algebra.Select (pred, child) -> { id; op = Select (pred, build child) }
    | Algebra.Join (cond, l, r) -> { id; op = Join (cond, build l, build r) }
  in
  let root = build expr in
  let rec collect n acc =
    let acc = n :: acc in
    match n.op with
    | Leaf _ -> acc
    | Project (_, c) | Select (_, c) -> collect c acc
    | Join (_, l, r) -> collect r (collect l acc)
  in
  let all =
    collect root [] |> List.sort (fun a b -> Int.compare a.id b.id)
  in
  { root; all }

let rec to_algebra n =
  match n.op with
  | Leaf schema -> Algebra.Relation schema
  | Project (attrs, c) -> Algebra.Project (attrs, to_algebra c)
  | Select (pred, c) -> Algebra.Select (pred, to_algebra c)
  | Join (cond, l, r) -> Algebra.Join (cond, to_algebra l, to_algebra r)

let to_algebra t = to_algebra t.root
let root t = t.root
let nodes t = t.all
let node t id = List.find_opt (fun n -> n.id = id) t.all
let size t = List.length t.all

let join_count t =
  List.length
    (List.filter (fun n -> match n.op with Join _ -> true | _ -> false) t.all)

let rec output n =
  match n.op with
  | Leaf schema -> Schema.attribute_set schema
  | Project (attrs, _) -> attrs
  | Select (_, c) -> output c
  | Join (_, l, r) -> Attribute.Set.union (output l) (output r)

let label n = Printf.sprintf "n%d" n.id

let children n =
  match n.op with
  | Leaf _ -> []
  | Project (_, c) | Select (_, c) -> [ c ]
  | Join (_, l, r) -> [ l; r ]

let pp_op ppf n =
  match n.op with
  | Leaf schema -> Fmt.pf ppf "%s" (Schema.name schema)
  | Project (attrs, c) ->
    Fmt.pf ppf "\xcf\x80%a (%s)" Attribute.Set.pp attrs (label c)
  | Select (pred, c) -> Fmt.pf ppf "\xcf\x83[%a] (%s)" Predicate.pp pred (label c)
  | Join (cond, l, r) ->
    Fmt.pf ppf "\xe2\x8b\x88[%a] (%s, %s)" Joinpath.Cond.pp_sql cond (label l)
      (label r)

let pp ppf t =
  let pp_node ppf n = Fmt.pf ppf "%s: %a" (label n) pp_op n in
  Fmt.(list ~sep:(any "@\n") pp_node) ppf t.all

let pp_tree ppf t =
  let rec go ppf n =
    match n.op with
    | Leaf schema -> Fmt.pf ppf "%s: %s" (label n) (Schema.name schema)
    | Project (attrs, c) ->
      Fmt.pf ppf "@[<v 2>%s: \xcf\x80 %a@,%a@]" (label n) Attribute.Set.pp
        attrs go c
    | Select (pred, c) ->
      Fmt.pf ppf "@[<v 2>%s: \xcf\x83 %a@,%a@]" (label n) Predicate.pp pred go
        c
    | Join (cond, l, r) ->
      Fmt.pf ppf "@[<v 2>%s: \xe2\x8b\x88 %a@,%a@,%a@]" (label n)
        Joinpath.Cond.pp_sql cond go l go r
  in
  go ppf t.root

let to_string = Fmt.to_to_string pp
