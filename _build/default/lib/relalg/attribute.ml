type t = { relation : string; name : string }

let make ~relation name =
  if relation = "" then invalid_arg "Attribute.make: empty relation name";
  if name = "" then invalid_arg "Attribute.make: empty attribute name";
  { relation; name }

let relation t = t.relation
let name t = t.name

let compare a b =
  match String.compare a.name b.name with
  | 0 -> String.compare a.relation b.relation
  | c -> c

let equal a b = compare a b = 0
let pp ppf t = Fmt.string ppf t.name
let pp_qualified ppf t = Fmt.pf ppf "%s.%s" t.relation t.name
let to_string = Fmt.to_to_string pp

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = struct
  include Set.Make (Ord)

  let pp ppf s =
    Fmt.pf ppf "@[<h>{%a}@]" Fmt.(list ~sep:(any ", ") pp) (elements s)

  let of_names ~relation names =
    of_list (List.map (fun n -> make ~relation n) names)
end

module Map = Map.Make (Ord)
