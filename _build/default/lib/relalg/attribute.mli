(** Attribute identities.

    The paper assumes every attribute name is globally unique across the
    distributed system ("all attributes in the different relations have
    distinct names", Section 2), falling back to dot notation otherwise.
    We keep the relation of origin as part of the identity, which makes
    the dot notation implicit, and print the bare name (the paper's
    convention) by default. *)

type t = private { relation : string; name : string }

(** [make ~relation name] builds the identity of attribute [name] of
    relation [relation]. Raises [Invalid_argument] on empty components. *)
val make : relation:string -> string -> t

val relation : t -> string
val name : t -> string

(** Lexicographic on [(name, relation)] so that printing sorted sets
    lists attributes alphabetically, as the paper's figures do. *)
val compare : t -> t -> int

val equal : t -> t -> bool

(** Bare name, e.g. ["Holder"]. *)
val pp : t Fmt.t

(** Dotted name, e.g. ["Insurance.Holder"]. *)
val pp_qualified : t Fmt.t

val to_string : t -> string

module Set : sig
  include Set.S with type elt = t

  (** [{A, B, C}] with bare names, sorted. *)
  val pp : t Fmt.t

  val of_names : relation:string -> string list -> t
end

module Map : Map.S with type key = t
