type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string

let type_rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Float _ -> 3
  | String _ -> 4

let compare a b =
  match a, b with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | String x, String y -> String.compare x y
  | (Null | Bool _ | Int _ | Float _ | String _), _ ->
    Int.compare (type_rank a) (type_rank b)

let equal a b = compare a b = 0

let hash = function
  | Null -> 17
  | Bool b -> if b then 31 else 37
  | Int i -> Hashtbl.hash (float_of_int i)
  | Float f -> Hashtbl.hash f
  | String s -> Hashtbl.hash s

let type_name = function
  | Null -> "null"
  | Bool _ -> "bool"
  | Int _ -> "int"
  | Float _ -> "float"
  | String _ -> "string"

let byte_width = function
  | Null | Bool _ -> 1
  | Int _ | Float _ -> 8
  | String s -> String.length s

let of_literal s =
  let s = String.trim s in
  let is_quoted =
    String.length s >= 2 && s.[0] = '\'' && s.[String.length s - 1] = '\''
  in
  if String.uppercase_ascii s = "NULL" then Null
  else if s = "true" then Bool true
  else if s = "false" then Bool false
  else if is_quoted then String (String.sub s 1 (String.length s - 2))
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None ->
      (match float_of_string_opt s with
       | Some f -> Float f
       | None -> String s)

let pp ppf = function
  | Null -> Fmt.string ppf "NULL"
  | Bool b -> Fmt.bool ppf b
  | Int i -> Fmt.int ppf i
  | Float f -> Fmt.float ppf f
  | String s -> Fmt.pf ppf "'%s'" s

let to_string = Fmt.to_to_string pp
