type t = {
  name : string;
  attributes : Attribute.t list;
  key : Attribute.t list;
}

let check_distinct name attrs =
  let sorted = List.sort String.compare attrs in
  let rec dup = function
    | a :: (b :: _ as rest) -> if a = b then Some a else dup rest
    | [ _ ] | [] -> None
  in
  match dup sorted with
  | Some a ->
    invalid_arg
      (Printf.sprintf "Schema.make: duplicate attribute %S in relation %S" a
         name)
  | None -> ()

let make name ~key attrs =
  if name = "" then invalid_arg "Schema.make: empty relation name";
  if attrs = [] then
    invalid_arg
      (Printf.sprintf "Schema.make: relation %S has no attributes" name);
  check_distinct name attrs;
  let missing = List.filter (fun k -> not (List.mem k attrs)) key in
  (match missing with
   | k :: _ ->
     invalid_arg
       (Printf.sprintf "Schema.make: key attribute %S not in relation %S" k
          name)
   | [] -> ());
  let mk n = Attribute.make ~relation:name n in
  { name; attributes = List.map mk attrs; key = List.map mk key }

let name t = t.name
let attributes t = t.attributes
let attribute_set t = Attribute.Set.of_list t.attributes
let key t = t.key

let attribute t n =
  List.find_opt (fun a -> Attribute.name a = n) t.attributes

let mem t a = List.exists (Attribute.equal a) t.attributes
let arity t = List.length t.attributes
let compare a b = String.compare a.name b.name
let equal a b = compare a b = 0

let pp ppf t =
  let pp_attr ppf a =
    if List.exists (Attribute.equal a) t.key then
      Fmt.pf ppf "%a*" Attribute.pp a
    else Attribute.pp ppf a
  in
  Fmt.pf ppf "%s(%a)" t.name Fmt.(list ~sep:(any ", ") pp_attr) t.attributes

let to_string = Fmt.to_to_string pp
