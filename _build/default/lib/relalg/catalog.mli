(** The catalog of a distributed system: which relations exist and at
    which server each is stored (Figure 1 of the paper is exactly a
    catalog drawing).

    The catalog also resolves the paper's bare-name notation: because
    attribute names are assumed globally distinct, a name like [Holder]
    denotes a unique attribute; the catalog performs that lookup and
    reports ambiguities. *)

type t

type error =
  | Unknown_relation of string
  | Unknown_attribute of string
  | Ambiguous_attribute of string * Attribute.t list
  | Duplicate_relation of string

val pp_error : error Fmt.t

(** [empty] contains no relations. *)
val empty : t

(** [add t schema ~at] stores [schema] at server [at].
    Errors with [Duplicate_relation] if the name is already taken. *)
val add : t -> Schema.t -> at:Server.t -> (t, error) result

(** [replicate t name ~at] adds a replica of an existing relation at
    another server. Idempotent when the replica already exists. *)
val replicate : t -> string -> at:Server.t -> (t, error) result

(** [of_list placements] builds a catalog from [(schema, server)] pairs.
    @raise Invalid_argument on duplicate relation names. *)
val of_list : (Schema.t * Server.t) list -> t

val schemas : t -> Schema.t list
val servers : t -> Server.Set.t

val relation : t -> string -> (Schema.t, error) result

(** Primary server of the given relation (the [~at] of {!add}). *)
val server_of : t -> string -> (Server.t, error) result

(** All servers holding a copy, primary first. *)
val servers_of : t -> string -> (Server.t list, error) result

(** [stores t name server] — does [server] hold a copy of [name]? *)
val stores : t -> string -> Server.t -> bool

(** [server_of_attribute t a] is the server storing [a]'s relation. *)
val server_of_attribute : t -> Attribute.t -> (Server.t, error) result

(** Resolve a possibly-dotted attribute name ("Holder" or
    "Insurance.Holder"). *)
val resolve_attribute : t -> string -> (Attribute.t, error) result

(** All attributes of all relations. *)
val all_attributes : t -> Attribute.Set.t

(** One line per relation: [server: schema]. *)
val pp : t Fmt.t
