(** Servers of the distributed system.

    A server is identified by its name (the paper writes [S_I], [S_H],
    ...). Every base relation is stored at exactly one server (the
    placement lives in {!module:Catalog}); authorizations grant views to
    servers; executor assignments pick servers for each plan node. *)

type t = private string

(** [make name] is the server called [name]; raises [Invalid_argument]
    on the empty string. *)
val make : string -> t

val name : t -> string
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : t Fmt.t
val to_string : t -> string

module Set : sig
  include Set.S with type elt = t

  val pp : t Fmt.t
end

module Map : Map.S with type key = t
