(** Atomic values stored in relation instances.

    The model of the paper is schema-level (authorizations talk about
    attributes, not values), but the distributed execution engine
    ({!module:Distsim}) moves concrete tuples around, so we need a small
    dynamically-typed value domain. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string

(** Total order over values. Values of distinct runtime types are ordered
    by a fixed type rank ([Null < Bool < Int < Float < String]), except
    that [Int] and [Float] compare numerically against each other, as an
    equi-join between an integer and a float column should behave
    arithmetically. *)
val compare : t -> t -> int

val equal : t -> t -> bool

(** [hash v] is compatible with {!equal}. *)
val hash : t -> int

(** Name of the runtime type, e.g. ["int"]. *)
val type_name : t -> string

(** Width in bytes used by the communication cost model: 1 for [Null]
    and [Bool], 8 for [Int] and [Float], string length for [String]. *)
val byte_width : t -> int

(** Parse a literal: [NULL], [true]/[false], integers, floats, and
    single-quoted strings; anything else is a bare string. *)
val of_literal : string -> t

val pp : t Fmt.t
val to_string : t -> string
