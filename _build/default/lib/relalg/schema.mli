(** Relation schemas.

    A schema is [R(A1, ..., An)] with a primary key (underlined in the
    paper's Figure 1). Schemas are value-only descriptions; instances
    live in {!module:Relation}. *)

type t = private {
  name : string;
  attributes : Attribute.t list;  (** in declaration order *)
  key : Attribute.t list;  (** primary key, subset of [attributes] *)
}

(** [make name ~key attrs] declares relation [name] with attribute
    names [attrs] (in order) and primary key [key] (a sublist of
    [attrs]).

    @raise Invalid_argument on duplicate attribute names, an empty
    attribute list, or a key attribute not among [attrs]. *)
val make : string -> key:string list -> string list -> t

val name : t -> string
val attributes : t -> Attribute.t list
val attribute_set : t -> Attribute.Set.t
val key : t -> Attribute.t list

(** [attribute t n] is the attribute of [t] called [n], if any. *)
val attribute : t -> string -> Attribute.t option

(** [mem t a] tests whether [a] belongs to [t] (by full identity). *)
val mem : t -> Attribute.t -> bool

val arity : t -> int
val compare : t -> t -> int
val equal : t -> t -> bool

(** Prints [R(A1, A2*, ...)], key attributes marked with [*]. *)
val pp : t Fmt.t

val to_string : t -> string
