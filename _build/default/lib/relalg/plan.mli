(** Query tree plans: algebra expressions with numbered nodes.

    The planner and the execution engine need stable node identities
    (the paper writes [n_0 ... n_6] in Figures 2 and 7). Nodes are
    numbered breadth-first from the root — exactly the labelling used by
    the paper's figures. *)

type t

type node = private {
  id : int;
  op : op;
}

and op =
  | Leaf of Schema.t
  | Project of Attribute.Set.t * node
  | Select of Predicate.t * node
  | Join of Joinpath.Cond.t * node * node

(** Number an expression (validating it first).
    @raise Invalid_argument on expressions that fail
    {!Algebra.validate}. *)
val of_algebra : Algebra.t -> t

(** Forget the numbering. *)
val to_algebra : t -> Algebra.t

val root : t -> node

(** All nodes, by increasing id (breadth-first order). *)
val nodes : t -> node list

val node : t -> int -> node option
val size : t -> int
val join_count : t -> int

(** Output attributes of the sub-plan rooted at a node. *)
val output : node -> Attribute.Set.t

(** Node label, ["n4"]. *)
val label : node -> string

(** Children of a node (0, 1 or 2). *)
val children : node -> node list

(** One line per node: [n0: π{...} (n1)]. *)
val pp : t Fmt.t

(** Indented tree rendering with node labels. *)
val pp_tree : t Fmt.t

val to_string : t -> string
