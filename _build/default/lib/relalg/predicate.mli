(** Selection conditions for the WHERE clause.

    The security model only needs the {e set of attributes} a condition
    mentions (the [R^sigma] component of a profile, Definition 3.2); the
    execution engine additionally needs to evaluate it on tuples. *)

type comparison = Eq | Neq | Lt | Le | Gt | Ge

type operand =
  | Const of Value.t
  | Attr of Attribute.t

type t =
  | True
  | Cmp of Attribute.t * comparison * operand
  | And of t * t
  | Or of t * t
  | Not of t

val comparison_of_string : string -> comparison option
val pp_comparison : comparison Fmt.t

(** Conjunction of a list; [True] for the empty list. *)
val conj : t list -> t

(** Attributes mentioned anywhere in the condition (including on the
    right-hand side of comparisons): this is what flows into
    [R^sigma]. *)
val attributes : t -> Attribute.Set.t

(** [eval lookup t] evaluates [t] on a tuple presented as a lookup
    function. Comparisons involving [Null] are false (SQL-ish
    three-valued logic collapsed to two values), except [Eq] on two
    nulls. @raise Not_found if [lookup] does. *)
val eval : (Attribute.t -> Value.t) -> t -> bool

val pp : t Fmt.t
val to_string : t -> string
