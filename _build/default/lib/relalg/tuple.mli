(** Tuples: finite maps from attributes to values. *)

type t

val empty : t

(** [of_list bindings]; later bindings win. *)
val of_list : (Attribute.t * Value.t) list -> t

val bindings : t -> (Attribute.t * Value.t) list
val add : Attribute.t -> Value.t -> t -> t

(** [find t a] is the value of [a].
    @raise Not_found when [a] is absent. *)
val find : t -> Attribute.t -> Value.t

val find_opt : t -> Attribute.t -> Value.t option
val mem : t -> Attribute.t -> bool
val attributes : t -> Attribute.Set.t

(** Keep only the given attributes. *)
val project : Attribute.Set.t -> t -> t

(** Disjoint-union of two tuples; on overlap the values must agree.
    @raise Invalid_argument if a shared attribute has distinct values. *)
val merge : t -> t -> t

(** [values_of t attrs] lists the values of [attrs], in order.
    @raise Not_found when one is absent. *)
val values_of : t -> Attribute.t list -> Value.t list

(** Total byte width (cost-model size) of the values. *)
val byte_width : t -> int

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : t Fmt.t
val to_string : t -> string
