module String_map = Map.Make (String)

type t = {
  relations : (Schema.t * Server.t list) String_map.t;
      (* servers holding a copy, primary first *)
  order : string list;  (* declaration order, for stable printing *)
}

type error =
  | Unknown_relation of string
  | Unknown_attribute of string
  | Ambiguous_attribute of string * Attribute.t list
  | Duplicate_relation of string

let pp_error ppf = function
  | Unknown_relation r -> Fmt.pf ppf "unknown relation %S" r
  | Unknown_attribute a -> Fmt.pf ppf "unknown attribute %S" a
  | Ambiguous_attribute (a, cands) ->
    Fmt.pf ppf "ambiguous attribute %S (candidates: %a)" a
      Fmt.(list ~sep:(any ", ") Attribute.pp_qualified)
      cands
  | Duplicate_relation r -> Fmt.pf ppf "duplicate relation %S" r

let empty = { relations = String_map.empty; order = [] }

let add t schema ~at =
  let name = Schema.name schema in
  if String_map.mem name t.relations then Error (Duplicate_relation name)
  else
    Ok
      {
        relations = String_map.add name (schema, [ at ]) t.relations;
        order = t.order @ [ name ];
      }

let replicate t name ~at =
  match String_map.find_opt name t.relations with
  | None -> Error (Unknown_relation name)
  | Some (schema, servers) ->
    let servers =
      if List.exists (Server.equal at) servers then servers
      else servers @ [ at ]
    in
    Ok { t with relations = String_map.add name (schema, servers) t.relations }

let of_list placements =
  List.fold_left
    (fun t (schema, at) ->
      match add t schema ~at with
      | Ok t -> t
      | Error e -> invalid_arg (Fmt.str "Catalog.of_list: %a" pp_error e))
    empty placements

let in_order t = List.filter_map (fun n -> String_map.find_opt n t.relations) t.order
let schemas t = List.map fst (in_order t)

let servers t =
  List.fold_left
    (fun acc (_, ss) -> List.fold_left (fun acc s -> Server.Set.add s acc) acc ss)
    Server.Set.empty (in_order t)

let relation t name =
  match String_map.find_opt name t.relations with
  | Some (schema, _) -> Ok schema
  | None -> Error (Unknown_relation name)

let server_of t name =
  match String_map.find_opt name t.relations with
  | Some (_, server :: _) -> Ok server
  | Some (_, []) -> assert false (* add always records one server *)
  | None -> Error (Unknown_relation name)

let servers_of t name =
  match String_map.find_opt name t.relations with
  | Some (_, servers) -> Ok servers
  | None -> Error (Unknown_relation name)

let stores t name server =
  match String_map.find_opt name t.relations with
  | Some (_, servers) -> List.exists (Server.equal server) servers
  | None -> false

let server_of_attribute t a = server_of t (Attribute.relation a)

let resolve_attribute t name =
  match String.index_opt name '.' with
  | Some i ->
    let rel = String.sub name 0 i in
    let attr = String.sub name (i + 1) (String.length name - i - 1) in
    (match relation t rel with
     | Error e -> Error e
     | Ok schema ->
       (match Schema.attribute schema attr with
        | Some a -> Ok a
        | None -> Error (Unknown_attribute name)))
  | None ->
    let candidates =
      List.filter_map
        (fun (schema, _) -> Schema.attribute schema name)
        (in_order t)
    in
    (match candidates with
     | [ a ] -> Ok a
     | [] -> Error (Unknown_attribute name)
     | _ :: _ -> Error (Ambiguous_attribute (name, candidates)))

let all_attributes t =
  List.fold_left
    (fun acc (schema, _) ->
      Attribute.Set.union acc (Schema.attribute_set schema))
    Attribute.Set.empty (in_order t)

let pp ppf t =
  let pp_entry ppf (schema, servers) =
    Fmt.pf ppf "%a: %a"
      Fmt.(list ~sep:(any ", ") Server.pp)
      servers Schema.pp schema
  in
  Fmt.(list ~sep:(any "@\n") pp_entry) ppf (in_order t)
