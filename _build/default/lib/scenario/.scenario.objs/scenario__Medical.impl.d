lib/scenario/medical.ml: Attribute Authorization Authz Catalog Fmt Joinpath List Policy Query Relalg Relation Schema Server Sql_parser Value
