lib/scenario/paper_figures.mli:
