lib/scenario/medical.mli: Attribute Authz Catalog Joinpath Plan Query Relalg Relation Schema Server
