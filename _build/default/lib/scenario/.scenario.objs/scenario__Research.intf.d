lib/scenario/research.mli: Attribute Authz Catalog Joinpath Plan Relalg Relation Schema Server
