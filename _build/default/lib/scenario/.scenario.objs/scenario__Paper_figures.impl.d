lib/scenario/paper_figures.ml: Attribute Authorization Authz Catalog Fmt Joinpath List Medical Plan Planner Printf Profile Relalg String
