lib/scenario/supply_chain.mli: Attribute Authz Catalog Joinpath Plan Relalg Relation Schema Server
