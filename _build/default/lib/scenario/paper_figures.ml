open Relalg
open Authz

let fig1_schema () = Fmt.str "%a" Catalog.pp Medical.catalog

let fig2_query_plan () =
  let plan = Medical.example_plan () in
  Fmt.str "@[<v>%a@,@,%a@]" Fmt.(list ~sep:(any "") string)
    [ Medical.example_query_sql ]
    Plan.pp_tree plan

(* Printed in the paper's own order (Policy.pp sorts by server). *)
let fig3_authorizations () =
  Fmt.str "%a"
    Fmt.(
      list ~sep:(any "@\n") (fun ppf (i, a) ->
          pf ppf "%2d %a" (i + 1) Authorization.pp a))
    (List.mapi (fun i a -> (i, a)) Medical.authorizations)

(* Figure 4 is a symbolic table; we demonstrate each row on concrete
   relations of the scenario so that the printed profiles are produced
   by the very functions the planner uses. *)
let fig4_profile_rules () =
  let insurance = Profile.of_base Medical.insurance in
  let hospital = Profile.of_base Medical.hospital in
  let x = Attribute.Set.of_list [ Medical.attr "Holder" ] in
  let cond =
    Joinpath.Cond.eq (Medical.attr "Holder") (Medical.attr "Patient")
  in
  Fmt.str
    "@[<v>R_l = Insurance, profile %a@,\
     R_r = Hospital,  profile %a@,\
     @,\
     pi_X(R_l)   with X = {Holder}:      %a@,\
     sigma_X(R_l) with X = {Holder}:     %a@,\
     R_l join R_r on Holder = Patient:   %a@]"
    Profile.pp insurance Profile.pp hospital Profile.pp
    (Profile.project x insurance)
    Profile.pp
    (Profile.select x insurance)
    Profile.pp
    (Profile.join cond insurance hospital)

(* Figure 5: the data exchanges of the four execution modes of a join,
   with the profile of every transmitted view, shown on the join
   Insurance ⋈ Nat_registry (node n2 of Figure 2). *)
let fig5_execution_modes () =
  let lp = Profile.of_base Medical.insurance in
  let rp = Profile.of_base Medical.nat_registry in
  let holder = Medical.attr "Holder" and citizen = Medical.attr "Citizen" in
  let cond = Joinpath.Cond.eq holder citizen in
  let jl = Attribute.Set.singleton holder in
  let jr = Attribute.Set.singleton citizen in
  let row ppf (mode, steps) =
    Fmt.pf ppf "@[<v 2>%s@,%a@]" mode
      Fmt.(list ~sep:(any "@,") string)
      steps
  in
  let s p = Fmt.str "%a" Profile.pp p in
  Fmt.str "@[<v>R_l = Insurance at S_l, R_r = Nat_registry at S_r, j = %a@,%a@]"
    Joinpath.Cond.pp cond
    Fmt.(list ~sep:(any "@,") row)
    [
      ( "[S_l, NULL] (regular join at S_l)",
        [ "S_r -> S_l: R_r with profile " ^ s rp ] );
      ( "[S_r, NULL] (regular join at S_r)",
        [ "S_l -> S_r: R_l with profile " ^ s lp ] );
      ( "[S_l, S_r] (semi-join, S_l master)",
        [
          "S_l -> S_r: pi_Jl(R_l) with profile "
          ^ s (Profile.project jl lp);
          "S_r -> S_l: pi_Jl(R_l) join R_r with profile "
          ^ s (Profile.join cond (Profile.project jl lp) rp);
        ] );
      ( "[S_r, S_l] (semi-join, S_r master)",
        [
          "S_r -> S_l: pi_Jr(R_r) with profile "
          ^ s (Profile.project jr rp);
          "S_l -> S_r: R_l join pi_Jr(R_r) with profile "
          ^ s (Profile.join cond (Profile.project jr rp) lp);
        ] );
    ]

let fig7_algorithm_trace () =
  let plan = Medical.example_plan () in
  match Planner.Safe_planner.plan Medical.catalog Medical.policy plan with
  | Ok { trace; _ } -> Fmt.str "%a" Planner.Safe_planner.pp_trace trace
  | Error f -> Fmt.str "%a" Planner.Safe_planner.pp_failure f

let all () =
  let section caption body =
    Printf.sprintf "=== %s ===\n%s\n" caption body
  in
  String.concat "\n"
    [
      section "Figure 1: schema of the distributed system" (fig1_schema ());
      section "Figure 2: query tree plan of Example 2.2" (fig2_query_plan ());
      section "Figure 3: authorizations" (fig3_authorizations ());
      section "Figure 4: profiles resulting from operations"
        (fig4_profile_rules ());
      section "Figure 5: execution modes and required views"
        (fig5_execution_modes ());
      section "Figures 6-7: algorithm execution" (fig7_algorithm_trace ());
    ]
