open Relalg
open Authz

let s_m = Server.make "S_M"
let s_p = Server.make "S_P"
let s_l = Server.make "S_L"
let s_b = Server.make "S_B"

let orders =
  Schema.make "Orders" ~key:[ "OrderId" ] [ "OrderId"; "Part"; "Customer" ]

let parts = Schema.make "Parts" ~key:[ "PartNo" ] [ "PartNo"; "Price" ]

let shipments =
  Schema.make "Shipments" ~key:[ "ShipId" ]
    [ "ShipId"; "OrderRef"; "Carrier" ]

let catalog =
  Catalog.of_list [ (orders, s_m); (parts, s_p); (shipments, s_l) ]

let attr name =
  match Catalog.resolve_attribute catalog name with
  | Ok a -> a
  | Error e -> invalid_arg (Fmt.str "Supply_chain.attr: %a" Catalog.pp_error e)

let order_id = attr "OrderId"
let part = attr "Part"
let customer = attr "Customer"
let part_no = attr "PartNo"
let price = attr "Price"
let order_ref = attr "OrderRef"
let carrier = attr "Carrier"

let join_graph =
  [ Joinpath.Cond.eq part part_no; Joinpath.Cond.eq order_id order_ref ]

let auth attrs path server =
  Authorization.make_exn ~attrs:(Attribute.Set.of_list attrs)
    ~path:(Joinpath.of_list path) server

let policy =
  Policy.of_list
    [
      (* Base grants: each server sees its own relation. *)
      auth [ order_id; part; customer ] [] s_m;
      auth [ part_no; price ] [] s_p;
      auth [ attr "ShipId"; order_ref; carrier ] [] s_l;
      (* The broker may see order lines and the price list — enough to
         act as third party for the pricing query. *)
      auth [ order_id; part; customer ] [] s_b;
      auth [ part_no; price ] [] s_b;
      (* Logistics may learn which order identifiers exist (semi-join
         slave view for the tracking query). *)
      auth [ order_id ] [] s_l;
      (* The manufacturer may see carriers of its own orders — exactly
         the semi-join master view of the tracking query. *)
      auth
        [ order_id; order_ref; carrier ]
        [ Joinpath.Cond.eq order_id order_ref ]
        s_m;
      (* Part numbers are public to the manufacturer (slave view of the
         customers query). *)
      auth [ part_no ] [] s_m;
      (* Instance-based restriction (Section 3.1): the supplier may see
         customers only for orders involving its parts. *)
      auth
        [ customer; part; part_no; price ]
        [ Joinpath.Cond.eq part part_no ]
        s_p;
    ]

let pricing_query_sql =
  "SELECT OrderId, Customer, Price FROM Orders JOIN Parts ON Part=PartNo"

let tracking_query_sql =
  "SELECT Customer, Carrier FROM Orders JOIN Shipments ON OrderId=OrderRef"

let customers_query_sql =
  "SELECT Customer, PartNo FROM Orders JOIN Parts ON Part=PartNo"

let plan_of sql = Query.to_plan (Sql_parser.parse_exn catalog sql)
let pricing_plan () = plan_of pricing_query_sql
let tracking_plan () = plan_of tracking_query_sql
let customers_plan () = plan_of customers_query_sql

let str s = Value.String s

let orders_rows =
  [
    [ str "o1"; str "p1"; str "alice" ];
    [ str "o2"; str "p2"; str "bob" ];
    [ str "o3"; str "p1"; str "carol" ];
    [ str "o4"; str "p3"; str "dave" ];
  ]

let parts_rows =
  [
    [ str "p1"; str "cheap" ];
    [ str "p2"; str "expensive" ];
    [ str "p4"; str "cheap" ];
  ]

let shipments_rows =
  [
    [ str "s1"; str "o1"; str "FastShip" ];
    [ str "s2"; str "o3"; str "SlowBoat" ];
    [ str "s3"; str "o9"; str "FastShip" ];
  ]

let instances =
  let table =
    [
      ("Orders", Relation.of_rows orders orders_rows);
      ("Parts", Relation.of_rows parts parts_rows);
      ("Shipments", Relation.of_rows shipments shipments_rows);
    ]
  in
  fun name -> List.assoc_opt name table
