(** Textual reproduction of every figure of the paper, regenerated from
    the implementation (nothing is hard-coded except the captions):

    - Figure 1: the medical catalog;
    - Figure 2: the query tree plan of Example 2.2, with the projection
      on Hospital pushed down;
    - Figure 3: the fifteen authorizations;
    - Figure 4: the profile-composition rules, demonstrated
      symbolically on the scenario's relations;
    - Figure 5: the four join execution modes with the views each
      requires, demonstrated on the join of Example 2.2;
    - Figure 6/7: the run of the algorithm — candidates found by the
      post-order traversal and executors assigned by the pre-order one.

    Each [figN] function renders to a string so that tests can assert
    on the content and [bench/main.exe] / [bin/cisqp.exe] can print
    it. *)

val fig1_schema : unit -> string
val fig2_query_plan : unit -> string
val fig3_authorizations : unit -> string
val fig4_profile_rules : unit -> string
val fig5_execution_modes : unit -> string
val fig7_algorithm_trace : unit -> string

(** All figures, captioned, in order. *)
val all : unit -> string
