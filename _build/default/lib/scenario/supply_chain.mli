(** A three-party supply-chain federation plus a broker, designed to
    exercise the corners of the model that the medical example does
    not:

    - a query that is {e infeasible} among the operand servers but
      rescued by a third party (footnote 3);
    - a query where only the {e semi-join} modes are authorized, so the
      regular-join-only baseline fails while the full planner succeeds;
    - an {e instance-based restriction} (Section 3.1): the supplier may
      see customers only for orders that concern its own parts.

    Relations: [Orders(OrderId*, Part, Customer)] at [S_M]
    (manufacturer), [Parts(PartNo*, Price)] at [S_P] (supplier),
    [Shipments(ShipId*, OrderRef, Carrier)] at [S_L] (logistics);
    the broker [S_B] stores nothing. *)

open Relalg

val s_m : Server.t
val s_p : Server.t
val s_l : Server.t
val s_b : Server.t  (** the broker — a third party, stores no relation *)

val orders : Schema.t
val parts : Schema.t
val shipments : Schema.t
val catalog : Catalog.t

(** @raise Invalid_argument on unknown names. *)
val attr : string -> Attribute.t

(** Edges: Part–PartNo, OrderId–OrderRef. *)
val join_graph : Joinpath.Cond.t list

val policy : Authz.Policy.t

(** [SELECT Customer, Price FROM Orders JOIN Parts ON Part=PartNo] —
    infeasible among [S_M]/[S_P]; the broker can rescue it. *)
val pricing_query_sql : string

(** [SELECT Customer, Carrier FROM Orders JOIN Shipments ON
    OrderId=OrderRef] — feasible only as a semi-join ([S_M] master,
    [S_L] slave). *)
val tracking_query_sql : string

(** [SELECT Customer, PartNo FROM Orders JOIN Parts ON Part=PartNo] —
    feasible only as a semi-join with [S_P] master, exercising the
    instance-based restriction: the supplier learns customers only of
    orders that involve its parts. *)
val customers_query_sql : string

val pricing_plan : unit -> Plan.t
val tracking_plan : unit -> Plan.t
val customers_plan : unit -> Plan.t

(** Deterministic sample instances. *)
val instances : string -> Relation.t option
