(** The paper's running example: the medical distributed system of
    Figure 1, the fifteen authorizations of Figure 3, and the query of
    Example 2.2 whose tree plan is Figure 2.

    Four relations at four servers:

    - [Insurance(Holder*, Plan)] at [S_I];
    - [Hospital(Patient*, Disease, Physician)] at [S_H];
    - [Nat_registry(Citizen*, HealthAid)] at [S_N];
    - [Disease_list(Illness*, Treatment)] at [S_D]. *)

open Relalg

val s_i : Server.t
val s_h : Server.t
val s_n : Server.t
val s_d : Server.t

val insurance : Schema.t
val hospital : Schema.t
val nat_registry : Schema.t
val disease_list : Schema.t

val catalog : Catalog.t

(** Look up one of the scenario's attributes by bare name.
    @raise Invalid_argument on unknown names. *)
val attr : string -> Attribute.t

(** The possible joins of the schema — the lines of Figure 1:
    Holder–Patient, Holder–Citizen, Patient–Citizen, Disease–Illness. *)
val join_graph : Joinpath.Cond.t list

(** The fifteen authorizations of Figure 3, in order. *)
val authorizations : Authz.Authorization.t list

val policy : Authz.Policy.t

(** Example 2.2:
    [SELECT Patient, Physician, Plan, HealthAid FROM Insurance JOIN
    Nat_registry ON Holder=Citizen JOIN Hospital ON Citizen=Patient]. *)
val example_query_sql : string

val example_query : unit -> Query.t

(** The query tree plan of Figure 2 (projection on Hospital pushed
    down), nodes numbered n0..n6 as in the paper. *)
val example_plan : unit -> Plan.t

(** Deterministic sample instances (a small population of patients,
    insurance holders and citizens with overlapping identifiers, so
    that every join is non-trivial). *)
val instances : string -> Relation.t option
