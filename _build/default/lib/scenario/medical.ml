open Relalg
open Authz

let s_i = Server.make "S_I"
let s_h = Server.make "S_H"
let s_n = Server.make "S_N"
let s_d = Server.make "S_D"

let insurance = Schema.make "Insurance" ~key:[ "Holder" ] [ "Holder"; "Plan" ]

let hospital =
  Schema.make "Hospital" ~key:[ "Patient" ]
    [ "Patient"; "Disease"; "Physician" ]

let nat_registry =
  Schema.make "Nat_registry" ~key:[ "Citizen" ] [ "Citizen"; "HealthAid" ]

let disease_list =
  Schema.make "Disease_list" ~key:[ "Illness" ] [ "Illness"; "Treatment" ]

let catalog =
  Catalog.of_list
    [
      (insurance, s_i);
      (hospital, s_h);
      (nat_registry, s_n);
      (disease_list, s_d);
    ]

let attr name =
  match Catalog.resolve_attribute catalog name with
  | Ok a -> a
  | Error e -> invalid_arg (Fmt.str "Medical.attr: %a" Catalog.pp_error e)

let holder = attr "Holder"
let plan_a = attr "Plan"
let patient = attr "Patient"
let disease = attr "Disease"
let physician = attr "Physician"
let citizen = attr "Citizen"
let healthaid = attr "HealthAid"
let illness = attr "Illness"
let treatment = attr "Treatment"

let join_graph =
  [
    Joinpath.Cond.eq holder patient;
    Joinpath.Cond.eq holder citizen;
    Joinpath.Cond.eq patient citizen;
    Joinpath.Cond.eq disease illness;
  ]

let auth n attrs path server =
  ignore n;
  Authorization.make_exn ~attrs:(Attribute.Set.of_list attrs)
    ~path:(Joinpath.of_list path) server

(* Figure 3, authorizations 1-15 in order. *)
let authorizations =
  [
    auth 1 [ holder; plan_a ] [] s_i;
    auth 2 [ holder; plan_a; patient; physician ]
      [ Joinpath.Cond.eq holder patient ]
      s_i;
    auth 3 [ holder; plan_a; treatment ]
      [ Joinpath.Cond.eq holder patient; Joinpath.Cond.eq disease illness ]
      s_i;
    auth 4 [ patient; disease; physician ] [] s_h;
    auth 5
      [ patient; disease; physician; holder; plan_a ]
      [ Joinpath.Cond.eq patient holder ]
      s_h;
    auth 6
      [ patient; disease; physician; citizen; healthaid ]
      [ Joinpath.Cond.eq patient citizen ]
      s_h;
    auth 7
      [ patient; disease; physician; holder; plan_a; citizen; healthaid ]
      [ Joinpath.Cond.eq patient citizen; Joinpath.Cond.eq citizen holder ]
      s_h;
    auth 8 [ citizen; healthaid ] [] s_n;
    auth 9 [ holder; plan_a ] [] s_n;
    auth 10 [ patient; disease ] [] s_n;
    auth 11
      [ citizen; healthaid; patient; disease ]
      [ Joinpath.Cond.eq citizen patient ]
      s_n;
    auth 12
      [ citizen; healthaid; holder; plan_a ]
      [ Joinpath.Cond.eq citizen holder ]
      s_n;
    auth 13
      [ patient; disease; holder; plan_a ]
      [ Joinpath.Cond.eq patient holder ]
      s_n;
    auth 14
      [ citizen; healthaid; patient; disease; holder; plan_a ]
      [ Joinpath.Cond.eq citizen patient; Joinpath.Cond.eq citizen holder ]
      s_n;
    auth 15 [ illness; treatment ] [] s_d;
  ]

let policy = Policy.of_list authorizations

let example_query_sql =
  "SELECT Patient, Physician, Plan, HealthAid FROM Insurance JOIN \
   Nat_registry ON Holder=Citizen JOIN Hospital ON Citizen=Patient"

let example_query () = Sql_parser.parse_exn catalog example_query_sql
let example_plan () = Query.to_plan (example_query ())

(* A small consistent population: citizens c1..c8; some are insurance
   holders, some are hospital patients, diseases drawn from the
   disease list. *)
let str s = Value.String s

let insurance_rows =
  [
    [ str "c1"; str "gold" ];
    [ str "c2"; str "silver" ];
    [ str "c4"; str "gold" ];
    [ str "c5"; str "basic" ];
    [ str "c7"; str "silver" ];
  ]

let hospital_rows =
  [
    [ str "c1"; str "flu"; str "Dr.Kay" ];
    [ str "c2"; str "asthma"; str "Dr.Lin" ];
    [ str "c3"; str "flu"; str "Dr.Kay" ];
    [ str "c5"; str "diabetes"; str "Dr.Moss" ];
    [ str "c6"; str "asthma"; str "Dr.Lin" ];
  ]

let nat_registry_rows =
  [
    [ str "c1"; str "none" ];
    [ str "c2"; str "partial" ];
    [ str "c3"; str "full" ];
    [ str "c4"; str "none" ];
    [ str "c5"; str "partial" ];
    [ str "c6"; str "full" ];
    [ str "c7"; str "none" ];
    [ str "c8"; str "full" ];
  ]

let disease_list_rows =
  [
    [ str "flu"; str "rest" ];
    [ str "asthma"; str "inhaler" ];
    [ str "diabetes"; str "insulin" ];
    [ str "anemia"; str "iron" ];
  ]

let instances =
  let table =
    [
      ("Insurance", Relation.of_rows insurance insurance_rows);
      ("Hospital", Relation.of_rows hospital hospital_rows);
      ("Nat_registry", Relation.of_rows nat_registry nat_registry_rows);
      ("Disease_list", Relation.of_rows disease_list disease_list_rows);
    ]
  in
  fun name -> List.assoc_opt name table
