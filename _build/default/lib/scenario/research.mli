(** A clinical-research federation built around footnote 3's
    {e coordinator}: a trusted matcher [S_T] that may see bare record
    identifiers — and nothing else — links participants across parties
    that must not see each other's data.

    - [Participants(Pid*, Cohort)] at [S_R] (study registry);
    - [Visits(Vid*, Subject, Outcome)] at [S_C] (clinic);
    - [Genomes(Gid*, Marker)] at [S_G] (genomics lab);
    - [S_T] stores nothing and is granted only the identifier columns.

    The {e outcomes} query (registry ⋈ clinic) is infeasible among the
    operands and cannot be proxied ([S_T] may not see cohorts or
    outcomes); it IS feasible with [S_T] as coordinator: the clinic
    learns which of its subjects participate (an instance-based
    restriction it is granted), the registry receives outcomes of
    matched participants only.

    The {e markers} query (registry ⋈ genomics) is a plain semi-join —
    no third party involved. *)

open Relalg

val s_r : Server.t
val s_c : Server.t
val s_g : Server.t
val s_t : Server.t  (** the trusted matcher; stores no relation *)

val participants : Schema.t
val visits : Schema.t
val genomes : Schema.t
val catalog : Catalog.t

(** @raise Invalid_argument on unknown names. *)
val attr : string -> Attribute.t

val join_graph : Joinpath.Cond.t list
val policy : Authz.Policy.t

(** [SELECT Cohort, Outcome FROM Participants JOIN Visits ON
    Pid=Subject] — coordinator-only. *)
val outcomes_query_sql : string

(** [SELECT Cohort, Marker FROM Participants JOIN Genomes ON Pid=Gid]
    — a plain semi-join. *)
val markers_query_sql : string

val outcomes_plan : unit -> Plan.t
val markers_plan : unit -> Plan.t

(** Deterministic sample instances. *)
val instances : string -> Relation.t option
