open Relalg
open Authz

let s_r = Server.make "S_R"
let s_c = Server.make "S_C"
let s_g = Server.make "S_G"
let s_t = Server.make "S_T"

let participants =
  Schema.make "Participants" ~key:[ "Pid" ] [ "Pid"; "Cohort" ]

let visits =
  Schema.make "Visits" ~key:[ "Vid" ] [ "Vid"; "Subject"; "Outcome" ]

let genomes = Schema.make "Genomes" ~key:[ "Gid" ] [ "Gid"; "Marker" ]

let catalog =
  Catalog.of_list [ (participants, s_r); (visits, s_c); (genomes, s_g) ]

let attr name =
  match Catalog.resolve_attribute catalog name with
  | Ok a -> a
  | Error e -> invalid_arg (Fmt.str "Research.attr: %a" Catalog.pp_error e)

let pid = attr "Pid"
let cohort = attr "Cohort"
let subject = attr "Subject"
let outcome = attr "Outcome"
let gid = attr "Gid"
let marker = attr "Marker"
let pid_subject = Joinpath.Cond.eq pid subject
let pid_gid = Joinpath.Cond.eq pid gid

let join_graph = [ pid_subject; pid_gid ]

let auth attrs path server =
  Authorization.make_exn ~attrs:(Attribute.Set.of_list attrs)
    ~path:(Joinpath.of_list path) server

let policy =
  Policy.of_list
    [
      (* Base grants. *)
      auth [ pid; cohort ] [] s_r;
      auth [ attr "Vid"; subject; outcome ] [] s_c;
      auth [ gid; marker ] [] s_g;
      (* The trusted matcher sees bare identifiers, nothing more. *)
      auth [ pid ] [] s_t;
      auth [ subject ] [] s_t;
      auth [ gid ] [] s_t;
      (* The clinic may learn which of its subjects participate in the
         study (instance-based restriction: Subject values under the
         join path only). *)
      auth [ subject ] [ pid_subject ] s_c;
      (* The registry may see outcomes of matched participants only. *)
      auth [ subject; outcome ] [ pid_subject ] s_r;
      (* Genomics side: the lab may learn participant identifiers
         (semi-join slave view), the registry may see markers of its
         participants. *)
      auth [ pid ] [] s_g;
      auth [ pid; gid; marker ] [ pid_gid ] s_r;
    ]

let outcomes_query_sql =
  "SELECT Cohort, Outcome FROM Participants JOIN Visits ON Pid = Subject"

let markers_query_sql =
  "SELECT Cohort, Marker FROM Participants JOIN Genomes ON Pid = Gid"

let plan_of sql = Query.to_plan (Sql_parser.parse_exn catalog sql)
let outcomes_plan () = plan_of outcomes_query_sql
let markers_plan () = plan_of markers_query_sql

let str s = Value.String s

let participants_rows =
  [
    [ str "p1"; str "treatment" ];
    [ str "p2"; str "control" ];
    [ str "p3"; str "treatment" ];
  ]

let visits_rows =
  [
    [ str "v1"; str "p1"; str "improved" ];
    [ str "v2"; str "p2"; str "stable" ];
    [ str "v3"; str "p9"; str "worse" ];
    [ str "v4"; str "p1"; str "improved" ];
  ]

let genomes_rows =
  [
    [ str "p1"; str "m-alpha" ];
    [ str "p3"; str "m-beta" ];
    [ str "p7"; str "m-alpha" ];
  ]

let instances =
  let table =
    [
      ("Participants", Relation.of_rows participants participants_rows);
      ("Visits", Relation.of_rows visits visits_rows);
      ("Genomes", Relation.of_rows genomes genomes_rows);
    ]
  in
  fun name -> List.assoc_opt name table
