open Relalg

(* Split a row on commas outside single quotes. *)
let split_row line s =
  let n = String.length s in
  let parts = ref [] and start = ref 0 and quoted = ref false in
  for i = 0 to n - 1 do
    match s.[i] with
    | '\'' -> quoted := not !quoted
    | ',' when not !quoted ->
      parts := String.sub s !start (i - !start) :: !parts;
      start := i + 1
    | _ -> ()
  done;
  if !quoted then Line_reader.fail line "unterminated quote";
  parts := String.sub s !start (n - !start) :: !parts;
  List.rev_map String.trim !parts |> List.rev

type section = {
  schema : Schema.t;
  columns : Attribute.t list;
  mutable rows : Tuple.t list;
}

let parse catalog input =
  Line_reader.protect (fun () ->
      let sections = ref [] in
      let current : section option ref = ref None in
      let pending_header : (int * Schema.t) option ref = ref None in
      let close_current () =
        match !current with
        | Some s -> sections := s :: !sections
        | None -> ()
      in
      List.iter
        (fun (line, text) ->
          match Line_reader.strip_prefix ~prefix:"@relation" text with
          | Some name ->
            close_current ();
            current := None;
            (match Catalog.relation catalog name with
             | Ok schema -> pending_header := Some (line, schema)
             | Error e ->
               Line_reader.fail line "%s" (Fmt.str "%a" Catalog.pp_error e))
          | None ->
            (match !pending_header with
             | Some (_, schema) ->
               (* This line is the header row. *)
               let names = split_row line text in
               let columns =
                 List.map
                   (fun n ->
                     match Schema.attribute schema n with
                     | Some a -> a
                     | None ->
                       Line_reader.fail line "unknown column %S in %s" n
                         (Schema.name schema))
                   names
               in
               let want = Schema.attribute_set schema in
               let got = Attribute.Set.of_list columns in
               if not (Attribute.Set.equal want got) then
                 Line_reader.fail line
                   "header of %s must name all attributes exactly once"
                   (Schema.name schema);
               pending_header := None;
               current := Some { schema; columns; rows = [] }
             | None ->
               (match !current with
                | None ->
                  Line_reader.fail line
                    "data before any '@relation' section: %S" text
                | Some section ->
                  let fields = split_row line text in
                  if List.length fields <> List.length section.columns then
                    Line_reader.fail line
                      "row has %d fields, expected %d (relation %s)"
                      (List.length fields)
                      (List.length section.columns)
                      (Schema.name section.schema);
                  let tuple =
                    Tuple.of_list
                      (List.map2
                         (fun a f -> (a, Value.of_literal f))
                         section.columns fields)
                  in
                  section.rows <- tuple :: section.rows)))
        (Line_reader.significant_lines input);
      (match !pending_header with
       | Some (line, schema) ->
         Line_reader.fail line "section %s has no header row"
           (Schema.name schema)
       | None -> ());
      close_current ();
      let table =
        List.map
          (fun s ->
            ( Schema.name s.schema,
              Relation.make (Schema.attributes s.schema) (List.rev s.rows) ))
          !sections
      in
      fun name -> List.assoc_opt name table)

let print relations =
  let buf = Buffer.create 256 in
  List.iter
    (fun (name, rel) ->
      Buffer.add_string buf (Printf.sprintf "@relation %s\n" name);
      let header = Relation.header rel in
      Buffer.add_string buf
        (String.concat ", " (List.map Attribute.name header) ^ "\n");
      List.iter
        (fun tuple ->
          let fields =
            List.map
              (fun a -> Value.to_string (Tuple.find tuple a))
              header
          in
          Buffer.add_string buf (String.concat ", " fields ^ "\n"))
        (Relation.tuples rel);
      Buffer.add_char buf '\n')
    relations;
  Buffer.contents buf
