(** Shared plumbing for the line-oriented text formats: comment and
    blank-line stripping, line numbering, and error reporting. *)

type error = {
  line : int;  (** 1-based line number *)
  message : string;
}

val pp_error : error Fmt.t

(** Significant lines of the input: trimmed, with [#]-comments and
    blank lines removed, each paired with its 1-based line number. *)
val significant_lines : string -> (int * string) list

(** [fail line fmt ...] raises internally; caught by {!protect}. *)
val fail : int -> ('a, Format.formatter, unit, 'b) format4 -> 'a

(** Run a parser body, turning {!fail} into [Error]. *)
val protect : (unit -> 'a) -> ('a, error) result

(** Split on a separator character, trimming each field and dropping
    empties: ["a, b , c"] on [','] gives [["a"; "b"; "c"]]. *)
val split_fields : char -> string -> string list

(** [strip_prefix ~prefix s] is [Some rest] when [s] starts with
    [prefix] followed by at least one space. *)
val strip_prefix : prefix:string -> string -> string option
