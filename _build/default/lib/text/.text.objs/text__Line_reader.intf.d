lib/text/line_reader.mli: Fmt Format
