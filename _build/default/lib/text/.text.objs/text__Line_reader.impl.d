lib/text/line_reader.ml: Fmt List String
