lib/text/authz_text.mli: Authz Catalog Line_reader Relalg
