lib/text/data_text.ml: Attribute Buffer Catalog Fmt Line_reader List Printf Relalg Relation Schema String Tuple Value
