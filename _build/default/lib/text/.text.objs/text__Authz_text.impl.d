lib/text/authz_text.ml: Attribute Authorization Authz Buffer Catalog Fmt Joinpath Line_reader List Policy Printf Relalg Server String
