lib/text/schema_text.mli: Catalog Joinpath Line_reader Relalg
