lib/text/schema_text.ml: Attribute Buffer Catalog Fmt Joinpath Line_reader List Printf Relalg Schema Server String
