lib/text/data_text.mli: Catalog Line_reader Relalg Relation
