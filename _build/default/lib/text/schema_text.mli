(** Textual schema definitions — the contents of Figure 1 as a file.

    {v
    # the medical federation
    relation Insurance    at S_I (Holder*, Plan)
    relation Hospital     at S_H (Patient*, Disease, Physician)
    relation Nat_registry at S_N (Citizen*, HealthAid)
    relation Disease_list at S_D (Illness*, Treatment)

    join Holder  = Patient      # the lines between relations
    join Holder  = Citizen
    join Patient = Citizen
    join Disease = Illness
    v}

    Attributes marked [*] form the primary key; [join] lines declare
    the join graph (used by the chase and the workload generators).
    [#] starts a comment; blank lines are ignored. *)

open Relalg

type t = {
  catalog : Catalog.t;
  join_graph : Joinpath.Cond.t list;
}

val parse : string -> (t, Line_reader.error) result

(** Render back to the file format ({!parse} of the output round-trips). *)
val print : t -> string
