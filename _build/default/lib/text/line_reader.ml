type error = {
  line : int;
  message : string;
}

let pp_error ppf e = Fmt.pf ppf "line %d: %s" e.line e.message

exception Fail of error

let significant_lines input =
  String.split_on_char '\n' input
  |> List.mapi (fun i line -> (i + 1, line))
  |> List.filter_map (fun (n, line) ->
         let line =
           match String.index_opt line '#' with
           | Some i -> String.sub line 0 i
           | None -> line
         in
         let line = String.trim line in
         if line = "" then None else Some (n, line))

let fail line fmt = Fmt.kstr (fun message -> raise (Fail { line; message })) fmt

let protect f =
  match f () with
  | v -> Ok v
  | exception Fail e -> Error e

let split_fields sep s =
  String.split_on_char sep s
  |> List.map String.trim
  |> List.filter (fun f -> f <> "")

let strip_prefix ~prefix s =
  let pl = String.length prefix in
  if
    String.length s > pl
    && String.sub s 0 pl = prefix
    && s.[pl] = ' '
  then Some (String.trim (String.sub s pl (String.length s - pl)))
  else None
