open Relalg

type t = {
  catalog : Catalog.t;
  join_graph : Joinpath.Cond.t list;
}

(* "relation NAME at SERVER (A*, B, C)" *)
let parse_relation line body =
  let fail fmt = Line_reader.fail line fmt in
  let lparen =
    match String.index_opt body '(' with
    | Some i -> i
    | None -> fail "expected '(' in relation declaration"
  in
  let head = String.trim (String.sub body 0 lparen) in
  let rest = String.sub body lparen (String.length body - lparen) in
  let name, servers =
    (* "NAME at SERVER" or "NAME at S1, S2" (replicas). *)
    let at_split =
      let rec find i =
        if i + 4 > String.length head then None
        else if String.sub head i 4 = " at " then Some i
        else find (i + 1)
      in
      find 0
    in
    match at_split with
    | None -> fail "expected 'relation NAME at SERVER (...)'"
    | Some i ->
      let name = String.trim (String.sub head 0 i) in
      let rest = String.sub head (i + 4) (String.length head - i - 4) in
      (match (name, Line_reader.split_fields ',' rest) with
       | "", _ | _, [] -> fail "expected 'relation NAME at SERVER (...)'"
       | name, servers -> (name, servers))
  in
  if String.length rest < 2 || rest.[String.length rest - 1] <> ')' then
    fail "expected ')' closing the attribute list";
  let attr_body = String.sub rest 1 (String.length rest - 2) in
  let attrs = Line_reader.split_fields ',' attr_body in
  if attrs = [] then fail "relation %s has no attributes" name;
  let is_key a = String.length a > 1 && a.[String.length a - 1] = '*' in
  let bare a = if is_key a then String.sub a 0 (String.length a - 1) else a in
  let key = List.filter_map (fun a -> if is_key a then Some (bare a) else None) attrs in
  match Schema.make name ~key (List.map bare attrs) with
  | schema -> (schema, List.map Server.make servers)
  | exception Invalid_argument msg -> fail "%s" msg

(* "join A = B" *)
let parse_join line body resolve =
  let fail fmt = Line_reader.fail line fmt in
  match Line_reader.split_fields '=' body with
  | [ l; r ] -> Joinpath.Cond.eq (resolve line l) (resolve line r)
  | _ -> fail "expected 'join A = B'"

let parse input =
  Line_reader.protect (fun () ->
      let lines = Line_reader.significant_lines input in
      let relations, joins =
        List.fold_left
          (fun (rels, joins) (line, text) ->
            match Line_reader.strip_prefix ~prefix:"relation" text with
            | Some body -> (parse_relation line body :: rels, joins)
            | None ->
              (match Line_reader.strip_prefix ~prefix:"join" text with
               | Some body -> (rels, (line, body) :: joins)
               | None ->
                 Line_reader.fail line
                   "expected a 'relation' or 'join' declaration, got %S" text))
          ([], []) lines
      in
      let catalog =
        List.fold_left
          (fun catalog (schema, servers) ->
            match servers with
            | [] -> assert false
            | primary :: replicas ->
              let catalog =
                match Catalog.add catalog schema ~at:primary with
                | Ok c -> c
                | Error e ->
                  Line_reader.fail 0 "%s" (Fmt.str "%a" Catalog.pp_error e)
              in
              List.fold_left
                (fun catalog replica ->
                  match
                    Catalog.replicate catalog (Schema.name schema) ~at:replica
                  with
                  | Ok c -> c
                  | Error e ->
                    Line_reader.fail 0 "%s" (Fmt.str "%a" Catalog.pp_error e))
                catalog replicas)
          Catalog.empty (List.rev relations)
      in
      let resolve line name =
        match Catalog.resolve_attribute catalog name with
        | Ok a -> a
        | Error e -> Line_reader.fail line "%s" (Fmt.str "%a" Catalog.pp_error e)
      in
      let join_graph =
        List.rev_map (fun (line, body) -> parse_join line body resolve) joins
      in
      { catalog; join_graph })

let print t =
  let buf = Buffer.create 256 in
  List.iter
    (fun schema ->
      let server =
        match Catalog.servers_of t.catalog (Schema.name schema) with
        | Ok ss -> String.concat ", " (List.map Server.name ss)
        | Error _ -> assert false
      in
      let attr a =
        let name = Attribute.name a in
        if List.exists (Attribute.equal a) (Schema.key schema) then name ^ "*"
        else name
      in
      Buffer.add_string buf
        (Printf.sprintf "relation %s at %s (%s)\n" (Schema.name schema) server
           (String.concat ", " (List.map attr (Schema.attributes schema)))))
    (Catalog.schemas t.catalog);
  List.iter
    (fun cond ->
      List.iter2
        (fun l r ->
          Buffer.add_string buf
            (Printf.sprintf "join %s = %s\n" (Attribute.name l)
               (Attribute.name r)))
        (Joinpath.Cond.left cond) (Joinpath.Cond.right cond))
    t.join_graph;
  Buffer.contents buf
