(** Textual authorization rules — Figure 3 as a file.

    One rule per line, in the paper's own notation:

    {v
    [{Holder, Plan}, -] -> S_I
    [{Holder, Plan, Patient, Physician}, {<Holder, Patient>}] -> S_I
    [{Holder, Plan, Treatment}, {<Holder,Patient>, <Disease,Illness>}] -> S_I
    v}

    The join path is [-] (empty) or a brace list of [<A, B>] pairs.
    Attribute names are resolved against the catalog (bare or dotted).
    [#] starts a comment.

    A file whose rules all start with [DENY] describes an {e open}
    policy (footnote 1): data visible by default, the listed rules
    denied. Mixing [DENY] and positive rules is an error. *)

open Relalg

val parse :
  Catalog.t -> string -> (Authz.Policy.t, Line_reader.error) result

(** Figure-3 notation, one rule per line; round-trips through
    {!parse}. *)
val print : Authz.Policy.t -> string
