(** Textual relation instances — a minimal multi-relation CSV bundle.

    {v
    @relation Insurance
    Holder, Plan
    c1, gold
    c2, silver

    @relation Hospital
    Patient, Disease, Physician
    c1, flu, 'Dr. Kay'
    v}

    Each [@relation NAME] section is followed by a header row naming
    the columns (any order; must cover the schema exactly) and data
    rows. Values use {!Relalg.Value.of_literal}: integers, floats,
    [true]/[false], [NULL], quoted or bare strings. *)

open Relalg

val parse :
  Catalog.t -> string -> ((string -> Relation.t option), Line_reader.error) result

(** Bundle all the given relations back to the text format. *)
val print : (string * Relation.t) list -> string
