open Relalg
open Authz

(* Grammar per line:
     rule   := '[' attrs ',' path ']' '->' SERVER
     attrs  := '{' name (',' name)* '}'
     path   := '-' | '{' pair (',' pair)* '}'
     pair   := '<' name ',' name '>'                                   *)

let resolve catalog line name =
  match Catalog.resolve_attribute catalog name with
  | Ok a -> a
  | Error e -> Line_reader.fail line "%s" (Fmt.str "%a" Catalog.pp_error e)

(* Find the index of the matching close delimiter, tolerating nesting. *)
let find_close line s ~from ~open_c ~close_c =
  let n = String.length s in
  let rec go i depth =
    if i >= n then
      Line_reader.fail line "unbalanced %c...%c" open_c close_c
    else if s.[i] = open_c then go (i + 1) (depth + 1)
    else if s.[i] = close_c then
      if depth = 0 then i else go (i + 1) (depth - 1)
    else go (i + 1) depth
  in
  go from 0

let parse_attrs catalog line body =
  let names = Line_reader.split_fields ',' body in
  if names = [] then Line_reader.fail line "empty attribute set";
  Attribute.Set.of_list (List.map (resolve catalog line) names)

let parse_pair catalog line s =
  let s = String.trim s in
  let n = String.length s in
  if n < 2 || s.[0] <> '<' || s.[n - 1] <> '>' then
    Line_reader.fail line "expected <A, B> in join path, got %S" s;
  match Line_reader.split_fields ',' (String.sub s 1 (n - 2)) with
  | [ l; r ] ->
    Joinpath.Cond.eq (resolve catalog line l) (resolve catalog line r)
  | _ -> Line_reader.fail line "expected exactly two attributes in %S" s

(* Split "…>, <…" pair lists on commas that are outside <>. *)
let split_pairs line body =
  let n = String.length body in
  let parts = ref [] and start = ref 0 and depth = ref 0 in
  for i = 0 to n - 1 do
    match body.[i] with
    | '<' -> incr depth
    | '>' -> decr depth
    | ',' when !depth = 0 ->
      parts := String.sub body !start (i - !start) :: !parts;
      start := i + 1
    | _ -> ()
  done;
  if !depth <> 0 then Line_reader.fail line "unbalanced <...> in join path";
  parts := String.sub body !start (n - !start) :: !parts;
  List.filter (fun s -> String.trim s <> "") (List.rev !parts)

let parse_path catalog line body =
  let body = String.trim body in
  if body = "-" then Joinpath.empty
  else begin
    let n = String.length body in
    if n < 2 || body.[0] <> '{' || body.[n - 1] <> '}' then
      Line_reader.fail line "join path must be '-' or '{<A,B>, ...}'";
    let inner = String.sub body 1 (n - 2) in
    Joinpath.of_list
      (List.map (parse_pair catalog line) (split_pairs line inner))
  end

let parse_rule ?(denial = false) catalog line text =
  let fail fmt = Line_reader.fail line fmt in
  let arrow =
    match
      let rec find i =
        if i + 1 >= String.length text then None
        else if text.[i] = '-' && text.[i + 1] = '>' then Some i
        else find (i + 1)
      in
      find 0
    with
    | Some i -> i
    | None -> fail "expected '->' in authorization"
  in
  let lhs = String.trim (String.sub text 0 arrow) in
  let server =
    String.trim (String.sub text (arrow + 2) (String.length text - arrow - 2))
  in
  if server = "" then fail "missing server after '->'";
  let n = String.length lhs in
  if n < 2 || lhs.[0] <> '[' || lhs.[n - 1] <> ']' then
    fail "authorization must start with '[' and end with ']'";
  let inner = String.trim (String.sub lhs 1 (n - 2)) in
  (* inner = "{attrs}, path" *)
  if String.length inner = 0 || inner.[0] <> '{' then
    fail "expected '{' opening the attribute set";
  let close = find_close line inner ~from:1 ~open_c:'{' ~close_c:'}' in
  let attrs_body = String.sub inner 1 (close - 1) in
  let rest = String.trim (String.sub inner (close + 1) (String.length inner - close - 1)) in
  let rest =
    if String.length rest > 0 && rest.[0] = ',' then
      String.trim (String.sub rest 1 (String.length rest - 1))
    else fail "expected ',' between attributes and join path"
  in
  let attrs = parse_attrs catalog line attrs_body in
  let path = parse_path catalog line rest in
  if denial then Authorization.make_denial ~attrs ~path (Server.make server)
  else
    match Authorization.make ~attrs ~path (Server.make server) with
    | Ok a -> a
    | Error e -> fail "%s" (Fmt.str "%a" Authorization.pp_error e)

let parse catalog input =
  Line_reader.protect (fun () ->
      let lines = Line_reader.significant_lines input in
      let classified =
        List.map
          (fun (line, text) ->
            match Line_reader.strip_prefix ~prefix:"DENY" text with
            | Some rest -> (line, rest, true)
            | None -> (line, text, false))
          lines
      in
      let denials = List.filter (fun (_, _, d) -> d) classified in
      match denials, classified with
      | [], _ ->
        List.fold_left
          (fun policy (line, text, _) ->
            Policy.add (parse_rule catalog line text) policy)
          Policy.empty classified
      | _, _ when List.length denials = List.length classified ->
        Policy.open_policy
          (List.map
             (fun (line, text, _) -> parse_rule ~denial:true catalog line text)
             classified)
      | (line, _, _) :: _, _ ->
        Line_reader.fail line
          "DENY rules cannot be mixed with positive rules in one policy")

let print policy =
  let buf = Buffer.create 256 in
  let rules, keyword =
    if Policy.is_open policy then (Policy.denials policy, "DENY ")
    else (Policy.authorizations policy, "")
  in
  List.iter
    (fun (a : Authorization.t) ->
      let attrs =
        String.concat ", "
          (List.map Attribute.name (Attribute.Set.elements a.attrs))
      in
      let path =
        if Joinpath.is_empty a.path then "-"
        else
          "{"
          ^ String.concat ", "
              (List.map
                 (fun cond ->
                   String.concat ", "
                     (List.map2
                        (fun l r ->
                          Printf.sprintf "<%s, %s>" (Attribute.name l)
                            (Attribute.name r))
                        (Joinpath.Cond.left cond) (Joinpath.Cond.right cond)))
                 (Joinpath.conditions a.path))
          ^ "}"
      in
      Buffer.add_string buf
        (Printf.sprintf "%s[{%s}, %s] -> %s\n" keyword attrs path
           (Server.name a.server)))
    rules;
  Buffer.contents buf
